package spu

import (
	"testing"

	"repro/internal/isa"
)

// Internal tests for the decode-time half of the burst fast path: the
// per-block uop tables and the dual burst masks, including the
// dependent-pair rule that lets the cycle before a store/WRITE
// pre-execute. The cycle-exactness of what these masks permit is
// enforced end-to-end by the burst differential suites; here we pin
// the static classification itself.

func testSPU() *SPU {
	return &SPU{cfg: DefaultConfig()}
}

func flagsOf(t *testing.T, code []isa.Instruction, pc int) uint8 {
	t.Helper()
	us := testSPU().buildUops(code)
	return us[pc].flags
}

func TestUopMaskPureComputeRun(t *testing.T) {
	code := []isa.Instruction{
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: 1},
		{Op: isa.MULI, Rd: 2, Ra: 1, Imm: 3},
		{Op: isa.STOP},
	}
	if f := flagsOf(t, code, 0); f&uopBurstReg == 0 || f&uopBurstLS == 0 {
		t.Errorf("compute pair flags = %#x, want both burst bits", f)
	}
	// The last instruction never bursts: block transitions run on the
	// engine clock.
	if f := flagsOf(t, code, 2); f&(uopBurstReg|uopBurstLS) != 0 {
		t.Errorf("last-instruction flags = %#x, want no burst bits", f)
	}
}

func TestUopMaskLSReadNeedsHorizon(t *testing.T) {
	code := []isa.Instruction{
		{Op: isa.LSRD, Rd: 1, Ra: 2, Imm: 0},
		{Op: isa.ADD, Rd: 3, Ra: 1, Rb: 1},
		{Op: isa.STOP},
	}
	f := flagsOf(t, code, 0)
	if f&uopBurstLS == 0 {
		t.Errorf("(lsrd, add) flags = %#x, want uopBurstLS", f)
	}
	if f&uopBurstReg != 0 {
		t.Errorf("(lsrd, add) flags = %#x: LS read must not be horizon-free", f)
	}
}

// The dependent-pair rule: a cycle whose second instruction is not
// burst-safe may still pre-execute when that instruction provably
// cannot dual-issue — it reads the first's destination (result latency
// >= 1) or competes for the same slot.
func TestUopMaskDependentPair(t *testing.T) {
	// write reads r4 (its address source Ra) which the add produces.
	dep := []isa.Instruction{
		{Op: isa.ADD, Rd: 4, Ra: 2, Rb: 3},
		{Op: isa.WRITE, Rd: 5, Ra: 4, Imm: 0},
		{Op: isa.STOP},
	}
	if f := flagsOf(t, dep, 0); f&uopBurstReg == 0 {
		t.Errorf("(add r4..., write [r4]) flags = %#x, want uopBurstReg (write cannot join)", f)
	}

	// Independent write: it could dual-issue with the add, so the cycle
	// must run on the engine clock.
	indep := []isa.Instruction{
		{Op: isa.ADD, Rd: 4, Ra: 2, Rb: 3},
		{Op: isa.WRITE, Rd: 5, Ra: 6, Imm: 0},
		{Op: isa.STOP},
	}
	if f := flagsOf(t, indep, 0); f&(uopBurstReg|uopBurstLS) != 0 {
		t.Errorf("(add, independent write) flags = %#x, want no burst bits", f)
	}

	// Same-slot pair: two memory-slot instructions can never share a
	// cycle, so the first may pre-execute even though the second is a
	// store.
	slot := []isa.Instruction{
		{Op: isa.LSRD, Rd: 1, Ra: 2, Imm: 0},
		{Op: isa.LSWR, Rd: 1, Ra: 2, Imm: 8},
		{Op: isa.STOP},
	}
	if f := flagsOf(t, slot, 0); f&uopBurstLS == 0 {
		t.Errorf("(lsrd, lswr) flags = %#x, want uopBurstLS (structural exclusion)", f)
	}

	// A RegZero destination leaves no scoreboard trace and proves
	// nothing.
	zero := []isa.Instruction{
		{Op: isa.ADD, Rd: 0, Ra: 2, Rb: 3},
		{Op: isa.WRITE, Rd: 5, Ra: 0, Imm: 0},
		{Op: isa.STOP},
	}
	if f := flagsOf(t, zero, 0); f&(uopBurstReg|uopBurstLS) != 0 {
		t.Errorf("(add r0..., write [r0]) flags = %#x, want no burst bits", f)
	}

	// Branches write no destination register; a branch before a store
	// may fall through into a dual-issue, so it must not pre-execute.
	br := []isa.Instruction{
		{Op: isa.BEQ, Ra: 2, Rb: 3, Imm: 0},
		{Op: isa.WRITE, Rd: 5, Ra: 6, Imm: 0},
		{Op: isa.STOP},
	}
	if f := flagsOf(t, br, 0); f&(uopBurstReg|uopBurstLS) != 0 {
		t.Errorf("(beq, write) flags = %#x, want no burst bits", f)
	}
}

func TestUopOperandAndSlotMetadata(t *testing.T) {
	code := []isa.Instruction{
		{Op: isa.STORE, Rd: 7, Ra: 8, Imm: 2}, // stores read Rd too
		{Op: isa.MULI, Rd: 2, Ra: 1, Imm: 3},
	}
	us := testSPU().buildUops(code)
	if us[0].nsrc != 2 || us[0].srcs[0] != 8 || us[0].srcs[1] != 7 {
		t.Errorf("store sources = %v x%d, want [8 7]", us[0].srcs, us[0].nsrc)
	}
	if us[0].flags&uopMem == 0 {
		t.Error("store must occupy the memory slot")
	}
	if us[1].flags&uopMem != 0 {
		t.Error("muli must occupy the compute slot")
	}
	if got := int(us[1].lat); got != DefaultConfig().LatMUL {
		t.Errorf("muli latency = %d, want %d", got, DefaultConfig().LatMUL)
	}
	if us[0].cls != iclsStore || us[1].cls != iclsOther {
		t.Errorf("instruction classes = %d,%d, want %d,%d", us[0].cls, us[1].cls, iclsStore, iclsOther)
	}
}
