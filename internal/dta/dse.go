package dta

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// DSEConfig holds per-DSE parameters.
type DSEConfig struct {
	ServiceRate int // FALLOC requests processed per cycle
}

// DefaultDSEConfig returns the default DSE parameters.
func DefaultDSEConfig() DSEConfig { return DSEConfig{ServiceRate: 1} }

// DSEStats aggregates distribution activity.
type DSEStats struct {
	Requests  int64 // FALLOC requests received
	Forwards  int64 // requests pushed to a peer DSE (node full)
	MaxQueue  int
	StallsAll int64 // cycles the head request waited with the node full
}

// DSE is the Distributed Scheduler Element of one node: it receives
// FALLOC requests, picks the least-loaded PE with a free frame
// (round-robin on ties) and forwards the request to that PE's LSE. When
// every PE in the node is full the request is forwarded to a peer node's
// DSE ("forwarding it to other nodes when internal resources are
// finished", paper §2); with no peers it queues until a frame frees.
type DSE struct {
	cfg    DSEConfig
	id     int
	node   int
	net    *noc.Network
	handle *sim.Handle

	lseEPs    []int // LSE endpoints of this node's PEs
	freeCount []int // conservative free-frame counts per PE
	epToIndex map[int]int
	peers     []int // other nodes' DSE endpoints, in forwarding order

	queue []noc.Message
	rr    int
	stats DSEStats
}

// NewDSE creates the DSE for node with the given LSE endpoints and their
// initial free-frame counts.
func NewDSE(cfg DSEConfig, id, node int, net *noc.Network, lseEPs []int, framesPerPE int, peers []int) *DSE {
	if cfg.ServiceRate <= 0 {
		panic("dta: non-positive DSE service rate")
	}
	d := &DSE{
		cfg: cfg, id: id, node: node, net: net,
		lseEPs:    append([]int(nil), lseEPs...),
		epToIndex: make(map[int]int),
		peers:     append([]int(nil), peers...),
	}
	for i, ep := range d.lseEPs {
		d.freeCount = append(d.freeCount, framesPerPE)
		d.epToIndex[ep] = i
	}
	return d
}

// Name implements sim.Component.
func (d *DSE) Name() string { return fmt.Sprintf("dse%d", d.node) }

// Attach stores the engine wake handle.
func (d *DSE) Attach(h *sim.Handle) { d.handle = h }

// Stats returns a copy of the accumulated statistics.
func (d *DSE) Stats() DSEStats { return d.stats }

// Reset restores the DSE's free-frame view and clears the request
// queue and statistics for machine reuse. framesPerPE must match the
// (unchanged) LSE configuration.
func (d *DSE) Reset(framesPerPE int) {
	for i := range d.freeCount {
		d.freeCount[i] = framesPerPE
	}
	d.queue = d.queue[:0]
	d.rr = 0
	d.stats = DSEStats{}
}

// Deliver implements noc.Endpoint.
func (d *DSE) Deliver(now sim.Cycle, msg noc.Message) {
	switch msg.Kind {
	case noc.KindFallocReq:
		d.stats.Requests++
		d.queue = append(d.queue, msg)
		if len(d.queue) > d.stats.MaxQueue {
			d.stats.MaxQueue = len(d.queue)
		}
	case noc.KindFrameFreed:
		if idx, ok := d.epToIndex[msg.Src]; ok {
			d.freeCount[idx]++
		}
		// A freed frame may unblock the queue head.
	default:
		panic(fmt.Sprintf("dse%d received unexpected %s", d.node, msg))
	}
	if d.handle != nil {
		d.handle.Wake(now + 1)
	}
}

// Tick distributes queued FALLOC requests.
func (d *DSE) Tick(now sim.Cycle) sim.Cycle {
	n := d.cfg.ServiceRate
	for n > 0 && len(d.queue) > 0 {
		msg := d.queue[0]
		target := d.pickTarget()
		if target < 0 {
			// Node full: forward to a peer node if the request has not
			// already visited every node, otherwise hold.
			hops := int(msg.A >> 32)
			if len(d.peers) > 0 && hops < len(d.peers) {
				fwd := msg
				fwd.A = msg.A&0xFFFFFFFF | int64(hops+1)<<32
				fwd.Src = d.id
				fwd.Dst = d.peers[0]
				d.net.Send(now, fwd)
				d.stats.Forwards++
				d.queue = d.queue[1:]
				n--
				continue
			}
			d.stats.StallsAll++
			break
		}
		d.freeCount[target]--
		d.net.Send(now, noc.Message{
			Src: d.id, Dst: d.lseEPs[target], Kind: noc.KindFallocFwd,
			A: msg.A & 0xFFFFFFFF, B: msg.B, C: msg.C, D: msg.D,
		})
		d.queue = d.queue[1:]
		n--
	}
	if len(d.queue) > 0 {
		// Throttled by service rate, or the head can still be forwarded
		// to a peer: work next cycle. Otherwise the node is full and the
		// head cannot travel further; sleep until KindFrameFreed wakes
		// the DSE.
		if d.canPlace() || d.canForward(d.queue[0]) {
			return now + 1
		}
		return sim.Never
	}
	return sim.Never
}

// canPlace reports whether any local PE has a free frame (no round-robin
// side effects).
func (d *DSE) canPlace() bool {
	for _, f := range d.freeCount {
		if f > 0 {
			return true
		}
	}
	return false
}

// canForward reports whether msg may still be pushed to a peer node.
func (d *DSE) canForward(msg noc.Message) bool {
	return len(d.peers) > 0 && int(msg.A>>32) < len(d.peers)
}

// pickTarget returns the PE index with the most free frames (round-robin
// tiebreak), or -1 when the node is full.
func (d *DSE) pickTarget() int {
	best, bestFree := -1, 0
	n := len(d.lseEPs)
	for off := 0; off < n; off++ {
		i := (d.rr + off) % n
		if d.freeCount[i] > bestFree {
			best, bestFree = i, d.freeCount[i]
		}
	}
	if best >= 0 {
		d.rr = (best + 1) % n
	}
	return best
}

// FreeFrames returns the DSE's view of free frames per PE (for tests).
func (d *DSE) FreeFrames() []int { return append([]int(nil), d.freeCount...) }

// DumpState implements sim.StateDumper.
func (d *DSE) DumpState() string {
	return fmt.Sprintf("queue=%d free=%v", len(d.queue), d.freeCount)
}
