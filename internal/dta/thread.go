package dta

import "fmt"

// ThreadState is the lifetime state of paper Figure 4. "Wait for frame"
// happens on the creator's side (the FALLOC round trip) and therefore
// has no state here; a Thread object exists once its frame is allocated.
type ThreadState uint8

const (
	StateWaitStores ThreadState = iota // SC > 0: inputs still arriving
	StateWaitBuffer                    // SC == 0 but the prefetch heap is full
	StateProgramDMA                    // queued for / executing its PF block
	StateWaitDMA                       // PF issued; waiting for the tag group to drain
	StateReady                         // all data local; waiting for the pipeline
	StateRunning                       // executing PL/EX/PS
	StateDone                          // STOP executed
)

func (s ThreadState) String() string {
	switch s {
	case StateWaitStores:
		return "wait-stores"
	case StateWaitBuffer:
		return "wait-buffer"
	case StateProgramDMA:
		return "program-dma"
	case StateWaitDMA:
		return "wait-dma"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Thread is one DTA thread instance. Its identity is the object; the
// frame slot is released at FFREE and may be reused while the thread is
// still executing its EX/PS blocks.
type Thread struct {
	Seq      int64 // unique per LSE; doubles as the MFC tag group
	Slot     int   // frame slot index on the owning SPE (-1 after FFREE)
	SPE      int
	Template int
	State    ThreadState
	SC       int // outstanding input stores

	BufAddr  int // prefetch buffer LS address (when PrefetchBytes > 0)
	BufBytes int

	// Virtual-frame-pointer bookkeeping: when the thread was allocated
	// on behalf of a VFP, the owner LSE endpoint and VFP index are kept
	// so the binding can be released when the thread completes.
	VFPOwner int // owner LSE endpoint id, -1 when not VFP-created
	VFPIndex int
}

func (t *Thread) String() string {
	return fmt.Sprintf("thread{seq=%d spe=%d slot=%d tmpl=%d %s sc=%d}",
		t.Seq, t.SPE, t.Slot, t.Template, t.State, t.SC)
}
