// Package dta implements the DTA-specific hardware of the paper: frame
// memory bookkeeping with per-thread synchronisation counters (SC), the
// Local Scheduler Element (LSE, one per SPE) and the Distributed
// Scheduler Element (DSE, one per node), together forming the hardware
// Distributed Scheduler. It also implements the thread lifetime of paper
// Figure 4, including the two states added for prefetching ("Program
// DMA" and "Wait for DMA"), and the virtual-frame-pointer extension of
// DTA-C (ref. [6]) that the paper's CellDTA lacked.
package dta

import "fmt"

// FP handles are 64-bit values flowing through registers and frames.
//
//	mailbox: -1 (all ones)
//	physical frame: fpBit | spe<<24 | slot
//	virtual frame:  fpBit | vfpBit | spe<<24 | index
const (
	fpBit  = int64(1) << 62
	vfpBit = int64(1) << 61

	// MailboxFP designates the PPE mailbox (see program.MailboxFP).
	MailboxFP = int64(-1)
)

// MakeFP encodes a physical frame pointer.
func MakeFP(spe, slot int) int64 {
	return fpBit | int64(spe)<<24 | int64(slot)
}

// MakeVFP encodes a virtual frame pointer.
func MakeVFP(spe, index int) int64 {
	return fpBit | vfpBit | int64(spe)<<24 | int64(index)
}

// IsMailbox reports whether v is the mailbox FP.
func IsMailbox(v int64) bool { return v == MailboxFP }

// IsFP reports whether v encodes a (physical or virtual) frame pointer.
func IsFP(v int64) bool { return v != MailboxFP && v&fpBit != 0 }

// IsVFP reports whether v encodes a virtual frame pointer.
func IsVFP(v int64) bool { return IsFP(v) && v&vfpBit != 0 }

// SplitFP decodes a frame pointer into SPE and slot/index.
func SplitFP(v int64) (spe, slot int, err error) {
	if !IsFP(v) {
		return 0, 0, fmt.Errorf("dta: %#x is not a frame pointer", v)
	}
	return int(v >> 24 & 0xFFFFF), int(v & 0xFFFFFF), nil
}

// FPString renders a frame pointer for diagnostics.
func FPString(v int64) string {
	if IsMailbox(v) {
		return "FP(mailbox)"
	}
	if !IsFP(v) {
		return fmt.Sprintf("FP(invalid %#x)", v)
	}
	spe, slot, _ := SplitFP(v)
	if IsVFP(v) {
		return fmt.Sprintf("VFP(spe=%d idx=%d)", spe, slot)
	}
	return fmt.Sprintf("FP(spe=%d slot=%d)", spe, slot)
}
