package dta

import (
	"fmt"
	"sort"

	"repro/internal/noc"
	"repro/internal/snap"
)

// SnapshotThread serialises one thread record. Threads are shared by
// pointer between the LSE structures and the SPU, so the machine-level
// snapshot serialises each thread once in a registry and the component
// snapshots refer to them by registry index.
func SnapshotThread(w *snap.Writer, th *Thread) {
	w.I64(th.Seq)
	w.Int(th.Slot)
	w.Int(th.SPE)
	w.Int(th.Template)
	w.U8(uint8(th.State))
	w.Int(th.SC)
	w.Int(th.BufAddr)
	w.Int(th.BufBytes)
	w.Int(th.VFPOwner)
	w.Int(th.VFPIndex)
}

// RestoreThread decodes one thread record into a fresh object.
func RestoreThread(r *snap.Reader) *Thread {
	th := &Thread{}
	th.Seq = r.I64()
	th.Slot = r.Int()
	th.SPE = r.Int()
	th.Template = r.Int()
	th.State = ThreadState(r.U8())
	th.SC = r.Int()
	th.BufAddr = r.Int()
	th.BufBytes = r.Int()
	th.VFPOwner = r.Int()
	th.VFPIndex = r.Int()
	return th
}

// Threads visits every thread the LSE holds a reference to, in a
// deterministic order (may visit the same thread more than once — the
// registry builder dedupes by pointer).
func (l *LSE) Threads(visit func(*Thread)) {
	for _, th := range l.slots {
		if th != nil {
			visit(th)
		}
	}
	for _, th := range l.readyQ {
		visit(th)
	}
	for _, th := range l.pfQ {
		visit(th)
	}
	for _, th := range l.pfPending {
		visit(th)
	}
	for _, k := range sortedI64ThreadKeys(l.waitDMA) {
		visit(l.waitDMA[k])
	}
	for _, k := range sortedI64ThreadKeys(l.drainWait) {
		visit(l.drainWait[k])
	}
	for i := l.inboxHead; i < len(l.inbox); i++ {
		if th := l.inbox[i].th; th != nil {
			visit(th)
		}
	}
}

func sortedI64ThreadKeys(m map[int64]*Thread) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func snapshotLSEItem(w *snap.Writer, it lseItem, index func(*Thread) int32) {
	w.U8(uint8(it.kind))
	noc.SnapshotMessage(w, it.msg)
	if it.th == nil {
		w.I64(-1)
	} else {
		w.I64(int64(index(it.th)))
	}
	w.I64(it.a)
	w.I64(it.b)
	w.I64(it.c)
}

func restoreLSEItem(r *snap.Reader, lookup func(int32) *Thread) lseItem {
	var it lseItem
	it.kind = itemKind(r.U8())
	it.msg = noc.RestoreMessage(r)
	if ref := r.I64(); ref >= 0 {
		it.th = lookup(int32(ref))
	}
	it.a = r.I64()
	it.b = r.I64()
	it.c = r.I64()
	return it
}

// Snapshot serialises the LSE's mutable state. Thread pointers are
// written as registry indices via index; the caller owns the registry.
// Wiring (endpoints, callbacks, store/allocator bindings, tracer) is
// construction-time and not serialised.
func (l *LSE) Snapshot(w *snap.Writer, index func(*Thread) int32) {
	w.Int(len(l.slots))
	for _, th := range l.slots {
		if th == nil {
			w.I64(-1)
		} else {
			w.I64(int64(index(th)))
		}
	}
	w.Int(len(l.freeSlots))
	for _, s := range l.freeSlots {
		w.Int(s)
	}
	w.I64(l.threadSeq)
	for _, q := range [][]*Thread{l.readyQ, l.pfQ, l.pfPending} {
		w.Int(len(q))
		for _, th := range q {
			w.I64(int64(index(th)))
		}
	}
	for _, m := range []map[int64]*Thread{l.waitDMA, l.drainWait} {
		keys := sortedI64ThreadKeys(m)
		w.Int(len(keys))
		for _, k := range keys {
			w.I64(k)
			w.I64(int64(index(m[k])))
		}
	}
	// Inbox rebased to the live window.
	w.Int(len(l.inbox) - l.inboxHead)
	for i := l.inboxHead; i < len(l.inbox); i++ {
		snapshotLSEItem(w, l.inbox[i], index)
	}
	plKeys := make([]int64, 0, len(l.pendingLocal))
	for k := range l.pendingLocal {
		plKeys = append(plKeys, k)
	}
	sort.Slice(plKeys, func(i, j int) bool { return plKeys[i] < plKeys[j] })
	w.Int(len(plKeys))
	for _, k := range plKeys {
		w.I64(k)
	}
	vfpKeys := make([]int, 0, len(l.vfps))
	for k := range l.vfps {
		vfpKeys = append(vfpKeys, k)
	}
	sort.Ints(vfpKeys)
	w.Int(len(vfpKeys))
	for _, k := range vfpKeys {
		e := l.vfps[k]
		w.Int(k)
		w.Bool(e.bound)
		w.I64(e.fp)
		w.Int(len(e.buffered))
		for _, it := range e.buffered {
			snapshotLSEItem(w, it, index)
		}
	}
	w.Int(l.vfpNext)
	reqKeys := make([]int64, 0, len(l.vfpByReq))
	for k := range l.vfpByReq {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool { return reqKeys[i] < reqKeys[j] })
	w.Int(len(reqKeys))
	for _, k := range reqKeys {
		w.I64(k)
		w.Int(l.vfpByReq[k])
	}
	w.I64(l.stats.Fallocs)
	w.I64(l.stats.LocalStores)
	w.I64(l.stats.RemoteStores)
	w.I64(l.stats.MailboxPosts)
	w.I64(l.stats.Frees)
	w.I64(l.stats.Threads)
	w.I64(l.stats.VFPBinds)
	w.I64(l.stats.VFPBuffered)
	w.Int(l.stats.MaxInbox)
	w.Int(l.stats.MaxReady)
	w.I64(l.stats.BufferWaits)
}

// Restore rewinds the LSE to a snapshot taken on an identically
// configured LSE running the same program. lookup resolves registry
// indices back to the freshly decoded thread objects.
func (l *LSE) Restore(r *snap.Reader, lookup func(int32) *Thread) error {
	ns := r.Int()
	if r.Err() == nil && ns != len(l.slots) {
		return fmt.Errorf("dta: snapshot has %d frame slots, lse%d has %d", ns, l.spe, len(l.slots))
	}
	for i := 0; i < ns; i++ {
		if ref := r.I64(); ref >= 0 {
			l.slots[i] = lookup(int32(ref))
		} else {
			l.slots[i] = nil
		}
	}
	l.freeSlots = l.freeSlots[:0]
	nf := r.Int()
	for i := 0; i < nf; i++ {
		l.freeSlots = append(l.freeSlots, r.Int())
	}
	l.threadSeq = r.I64()
	for _, q := range []*[]*Thread{&l.readyQ, &l.pfQ, &l.pfPending} {
		*q = (*q)[:0]
		n := r.Int()
		for i := 0; i < n; i++ {
			*q = append(*q, lookup(int32(r.I64())))
		}
	}
	for _, m := range []map[int64]*Thread{l.waitDMA, l.drainWait} {
		clear(m)
		n := r.Int()
		for i := 0; i < n; i++ {
			k := r.I64()
			m[k] = lookup(int32(r.I64()))
		}
	}
	for i := range l.inbox {
		l.inbox[i] = lseItem{}
	}
	l.inbox = l.inbox[:0]
	l.inboxHead = 0
	ni := r.Int()
	for i := 0; i < ni; i++ {
		l.inbox = append(l.inbox, restoreLSEItem(r, lookup))
	}
	clear(l.pendingLocal)
	np := r.Int()
	for i := 0; i < np; i++ {
		l.pendingLocal[r.I64()] = true
	}
	clear(l.vfps)
	nv := r.Int()
	for i := 0; i < nv; i++ {
		k := r.Int()
		e := &vfpEntry{bound: r.Bool(), fp: r.I64()}
		nb := r.Int()
		for j := 0; j < nb; j++ {
			e.buffered = append(e.buffered, restoreLSEItem(r, lookup))
		}
		l.vfps[k] = e
	}
	l.vfpNext = r.Int()
	clear(l.vfpByReq)
	nr := r.Int()
	for i := 0; i < nr; i++ {
		k := r.I64()
		l.vfpByReq[k] = r.Int()
	}
	l.stats.Fallocs = r.I64()
	l.stats.LocalStores = r.I64()
	l.stats.RemoteStores = r.I64()
	l.stats.MailboxPosts = r.I64()
	l.stats.Frees = r.I64()
	l.stats.Threads = r.I64()
	l.stats.VFPBinds = r.I64()
	l.stats.VFPBuffered = r.I64()
	l.stats.MaxInbox = r.Int()
	l.stats.MaxReady = r.Int()
	l.stats.BufferWaits = r.I64()
	return r.Err()
}

// Snapshot serialises the DSE's mutable state: the free-frame view, the
// request queue, the round-robin cursor and statistics.
func (d *DSE) Snapshot(w *snap.Writer) {
	w.Int(len(d.freeCount))
	for _, f := range d.freeCount {
		w.Int(f)
	}
	w.Int(len(d.queue))
	for _, msg := range d.queue {
		noc.SnapshotMessage(w, msg)
	}
	w.Int(d.rr)
	w.I64(d.stats.Requests)
	w.I64(d.stats.Forwards)
	w.Int(d.stats.MaxQueue)
	w.I64(d.stats.StallsAll)
}

// Restore rewinds the DSE to a snapshot taken on an identically
// configured DSE.
func (d *DSE) Restore(r *snap.Reader) error {
	nf := r.Int()
	if r.Err() == nil && nf != len(d.freeCount) {
		return fmt.Errorf("dta: snapshot has %d PEs, dse%d has %d", nf, d.node, len(d.freeCount))
	}
	for i := 0; i < nf; i++ {
		d.freeCount[i] = r.Int()
	}
	d.queue = d.queue[:0]
	nq := r.Int()
	for i := 0; i < nq; i++ {
		d.queue = append(d.queue, noc.RestoreMessage(r))
	}
	d.rr = r.Int()
	d.stats.Requests = r.I64()
	d.stats.Forwards = r.I64()
	d.stats.MaxQueue = r.Int()
	d.stats.StallsAll = r.I64()
	return r.Err()
}
