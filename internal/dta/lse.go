package dta

import (
	"fmt"

	"repro/internal/ls"
	"repro/internal/noc"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FrameBytes is the frame size in bytes (MaxFrameSlots 64-bit slots).
const FrameBytes = program.MaxFrameSlots * 8

// WorkKind tells the SPU what kind of dispatch it received.
type WorkKind int

const (
	WorkNone   WorkKind = iota
	WorkPF              // execute the thread's PF block (Program DMA state)
	WorkThread          // execute PL/EX/PS
)

// LSEConfig holds per-LSE parameters.
type LSEConfig struct {
	NumFrames   int  // frames managed by this LSE
	ServiceRate int  // scheduler operations processed per cycle
	InboxCap    int  // queued operations before the SPU is back-pressured
	VirtualFP   bool // virtual frame pointers (DTA-C extension)
	VFPMax      int  // outstanding virtual FP bindings
}

// DefaultLSEConfig returns the defaults used by the CellDTA machine.
func DefaultLSEConfig() LSEConfig {
	return LSEConfig{NumFrames: 64, ServiceRate: 1, InboxCap: 8, VirtualFP: false, VFPMax: 256}
}

// LSEStats aggregates scheduler activity on one SPE.
type LSEStats struct {
	Fallocs      int64 // frames allocated here
	LocalStores  int64 // frame stores that stayed on-SPE
	RemoteStores int64 // frame stores sent across the interconnect
	MailboxPosts int64
	Frees        int64
	Threads      int64 // threads completed
	VFPBinds     int64
	VFPBuffered  int64 // stores buffered while a VFP was unbound
	MaxInbox     int
	MaxReady     int
	BufferWaits  int64 // threads that waited for prefetch-heap space
}

type itemKind uint8

const (
	itemNet itemKind = iota
	itemFalloc
	itemStore
	itemFree
	itemDone
)

type lseItem struct {
	kind itemKind
	msg  noc.Message
	th   *Thread
	a    int64 // falloc: template; store: fp
	b    int64 // falloc: sc;       store: value
	c    int64 // falloc: reqID;    store: slot
}

type vfpEntry struct {
	bound    bool
	fp       int64
	buffered []lseItem // store items waiting for the binding
}

// LSE is the Local Scheduler Element of one SPE: it manages the frame
// table, synchronisation counters, the ready/PF queues, and speaks the
// scheduler protocol with the DSE and other LSEs.
type LSE struct {
	cfg   LSEConfig
	id    int // noc endpoint id
	spe   int
	dseID int
	ppeID int
	net   *noc.Network
	store *ls.LocalStore
	alloc *ls.Allocator
	base  int64 // frame region base in the local store
	prog  *program.Program

	handle *sim.Handle
	lseEP  func(spe int) int // SPE index -> LSE endpoint id

	slots     []*Thread
	freeSlots []int
	threadSeq int64
	readyQ    []*Thread
	pfQ       []*Thread
	pfPending []*Thread
	waitDMA   map[int64]*Thread
	drainWait map[int64]*Thread // STOPped threads with outstanding DMA (write-back PUTs)

	// inbox is a FIFO with an explicit head cursor: Tick consumes from
	// inboxHead instead of re-slicing (which leaks capacity and
	// reallocates on every refill of a hot queue).
	inbox        []lseItem
	inboxHead    int
	pendingLocal map[int64]bool

	vfps     map[int]*vfpEntry
	vfpNext  int
	vfpByReq map[int64]int

	// OnFallocResp delivers a frame pointer for a local FALLOC request.
	OnFallocResp func(now sim.Cycle, reqID, fp int64)
	// OnWork wakes the SPU when the ready or PF queue becomes non-empty.
	OnWork func(now sim.Cycle)
	// Outstanding queries the MFC for incomplete commands in a tag group.
	Outstanding func(tag int64) int
	// Fault receives protocol violations.
	Fault func(error)
	// Trace receives thread-lifecycle events (nil disables tracing).
	Trace *trace.Buffer

	stats LSEStats
}

// NewLSE creates the LSE for SPE spe. base is the LS address of the
// frame region (NumFrames*FrameBytes bytes); alloc manages the prefetch
// heap of the same local store.
func NewLSE(cfg LSEConfig, id, spe, dseID, ppeID int, net *noc.Network,
	store *ls.LocalStore, alloc *ls.Allocator, base int64,
	prog *program.Program, lseEP func(int) int) *LSE {
	if cfg.NumFrames <= 0 || cfg.ServiceRate <= 0 || cfg.InboxCap <= 0 {
		panic("dta: non-positive LSE configuration")
	}
	l := &LSE{
		cfg: cfg, id: id, spe: spe, dseID: dseID, ppeID: ppeID,
		net: net, store: store, alloc: alloc, base: base, prog: prog,
		lseEP:        lseEP,
		slots:        make([]*Thread, cfg.NumFrames),
		waitDMA:      make(map[int64]*Thread),
		drainWait:    make(map[int64]*Thread),
		pendingLocal: make(map[int64]bool),
		vfps:         make(map[int]*vfpEntry),
		vfpByReq:     make(map[int64]int),
		Fault:        func(err error) { panic(err) },
	}
	for i := cfg.NumFrames - 1; i >= 0; i-- {
		l.freeSlots = append(l.freeSlots, i)
	}
	return l
}

// Name implements sim.Component.
func (l *LSE) Name() string { return fmt.Sprintf("lse%d", l.spe) }

// Reset returns the LSE to its post-construction state for machine
// reuse, rebinding it to prog with the frame region at base (both
// depend on the loaded program's layout). Wiring (callbacks, endpoints,
// tracer) is kept.
func (l *LSE) Reset(prog *program.Program, base int64) {
	l.prog = prog
	l.base = base
	for i := range l.slots {
		l.slots[i] = nil
	}
	l.freeSlots = l.freeSlots[:0]
	for i := l.cfg.NumFrames - 1; i >= 0; i-- {
		l.freeSlots = append(l.freeSlots, i)
	}
	l.threadSeq = 0
	l.readyQ = l.readyQ[:0]
	l.pfQ = l.pfQ[:0]
	l.pfPending = l.pfPending[:0]
	clear(l.waitDMA)
	clear(l.drainWait)
	for i := range l.inbox {
		l.inbox[i] = lseItem{}
	}
	l.inbox = l.inbox[:0]
	l.inboxHead = 0
	clear(l.pendingLocal)
	clear(l.vfps)
	l.vfpNext = 0
	clear(l.vfpByReq)
	l.stats = LSEStats{}
}

// Attach stores the engine wake handle.
func (l *LSE) Attach(h *sim.Handle) { l.handle = h }

// Stats returns a copy of the accumulated statistics.
func (l *LSE) Stats() LSEStats { return l.stats }

// FrameAddr returns the LS address of a frame slot.
func (l *LSE) FrameAddr(slot int) int64 { return l.base + int64(slot)*FrameBytes }

// CanAccept reports whether the SPU may hand the LSE another operation
// this cycle (backpressure: the paper's "LSE can't keep up" stalls).
func (l *LSE) CanAccept() bool { return len(l.inbox)-l.inboxHead < l.cfg.InboxCap }

func (l *LSE) push(now sim.Cycle, it lseItem) {
	l.inbox = append(l.inbox, it)
	if q := len(l.inbox) - l.inboxHead; q > l.stats.MaxInbox {
		l.stats.MaxInbox = q
	}
	if l.handle != nil {
		l.handle.Wake(now + 1)
	}
}

// RequestFalloc queues a local FALLOC (from this SPE's SPU). The
// response arrives through OnFallocResp.
func (l *LSE) RequestFalloc(now sim.Cycle, template, sc int, reqID int64) {
	l.push(now, lseItem{kind: itemFalloc, a: int64(template), b: int64(sc), c: reqID})
}

// StoreTo queues a local frame store (from this SPE's SPU).
func (l *LSE) StoreTo(now sim.Cycle, fp int64, slot int, value int64) {
	l.push(now, lseItem{kind: itemStore, a: fp, b: value, c: int64(slot)})
}

// Ffree queues the release of the thread's frame.
func (l *LSE) Ffree(now sim.Cycle, th *Thread) {
	l.push(now, lseItem{kind: itemFree, th: th})
}

// ThreadDone queues thread completion (STOP).
func (l *LSE) ThreadDone(now sim.Cycle, th *Thread) {
	l.push(now, lseItem{kind: itemDone, th: th})
}

// NextWork hands the SPU its next dispatch: PF blocks have priority so
// DMA programming overlaps thread execution as early as possible.
func (l *LSE) NextWork(now sim.Cycle) (*Thread, WorkKind) {
	if len(l.pfQ) > 0 {
		th := l.pfQ[0]
		l.pfQ = l.pfQ[1:]
		l.emit(now, trace.PFDispatch, th)
		return th, WorkPF
	}
	if len(l.readyQ) > 0 {
		th := l.readyQ[0]
		l.readyQ = l.readyQ[1:]
		th.State = StateRunning
		l.emit(now, trace.Dispatch, th)
		return th, WorkThread
	}
	return nil, WorkNone
}

// emit records a lifecycle event when tracing is enabled.
func (l *LSE) emit(now sim.Cycle, kind trace.Kind, th *Thread) {
	l.Trace.Emit(trace.Event{
		At: now, SPE: l.spe, Kind: kind, Thread: th.Seq, Template: th.Template,
	})
}

// HasWork reports whether a dispatch is available.
func (l *LSE) HasWork() bool { return len(l.pfQ) > 0 || len(l.readyQ) > 0 }

// PFDone is called by the SPU when the thread's PF block fell off its
// end: the thread either waits for its DMA tag group or becomes ready.
func (l *LSE) PFDone(now sim.Cycle, th *Thread) {
	if l.Outstanding != nil && l.Outstanding(th.Seq) > 0 {
		th.State = StateWaitDMA
		l.waitDMA[th.Seq] = th
		l.emit(now, trace.WaitDMA, th)
		return
	}
	l.ready(now, th)
}

// TagIdle is the MFC completion callback: the thread's transfers are in
// the local store, so it becomes ready (paper Fig. 4: Wait for DMA ->
// Ready).
func (l *LSE) TagIdle(now sim.Cycle, tag int64) {
	if th, ok := l.drainWait[tag]; ok {
		// A completed thread's write-back PUTs drained: finish it now.
		delete(l.drainWait, tag)
		l.finishDone(now, th)
		return
	}
	th, ok := l.waitDMA[tag]
	if !ok {
		// A tag drained before PFDone ran (command completed while the
		// PF block was still executing); PFDone will see Outstanding==0.
		return
	}
	delete(l.waitDMA, tag)
	l.ready(now, th)
}

func (l *LSE) ready(now sim.Cycle, th *Thread) {
	th.State = StateReady
	l.emit(now, trace.Ready, th)
	l.readyQ = append(l.readyQ, th)
	if len(l.readyQ) > l.stats.MaxReady {
		l.stats.MaxReady = len(l.readyQ)
	}
	if l.OnWork != nil {
		l.OnWork(now)
	}
}

// Deliver implements noc.Endpoint.
func (l *LSE) Deliver(now sim.Cycle, msg noc.Message) {
	l.push(now, lseItem{kind: itemNet, msg: msg})
}

// Tick processes up to ServiceRate queued operations.
//
// Scheduling contract (the SPU's local-store burst window depends on
// it): every local-store mutation the LSE performs — frame writes in
// localFrameStore — happens inside Tick, and whenever the inbox is
// non-empty the LSE is scheduled in the engine for the next cycle
// (push wakes the handle, Tick returns now+1 while work remains). The
// SPU's quiescence horizon reads that schedule via
// sim.Engine.NextScheduled, so pending frame stores are always
// advertised before they can land. An LSE change that writes the
// store outside Tick, or that defers work without staying scheduled,
// would silently break that proof — don't.
func (l *LSE) Tick(now sim.Cycle) sim.Cycle {
	n := l.cfg.ServiceRate
	for n > 0 && l.inboxHead < len(l.inbox) {
		it := l.inbox[l.inboxHead]
		l.inbox[l.inboxHead] = lseItem{} // release thread references
		l.inboxHead++
		l.process(now, it)
		n--
	}
	if l.inboxHead < len(l.inbox) {
		if l.inboxHead > 32 && 2*l.inboxHead >= len(l.inbox) {
			// Compact once the dead prefix dominates a backlogged inbox.
			kept := copy(l.inbox, l.inbox[l.inboxHead:])
			l.inbox = l.inbox[:kept]
			l.inboxHead = 0
		}
		return now + 1
	}
	l.inbox = l.inbox[:0]
	l.inboxHead = 0
	return sim.Never
}

func (l *LSE) process(now sim.Cycle, it lseItem) {
	switch it.kind {
	case itemFalloc:
		l.handleLocalFalloc(now, it)
	case itemStore:
		l.routeStore(now, it.a, it.c, it.b)
	case itemFree:
		l.releaseSlot(now, it.th)
	case itemDone:
		l.threadDone(now, it.th)
	case itemNet:
		l.handleNet(now, it.msg)
	}
}

func (l *LSE) handleLocalFalloc(now sim.Cycle, it lseItem) {
	if l.cfg.VirtualFP {
		if len(l.vfps) >= l.cfg.VFPMax {
			// Table full: fall back to the blocking path.
			l.pendingLocal[it.c] = true
			l.net.Send(now, noc.Message{
				Src: l.id, Dst: l.dseID, Kind: noc.KindFallocReq,
				A: it.a, B: it.b, C: it.c, D: int64(l.id),
			})
			return
		}
		idx := l.vfpNext
		l.vfpNext++
		l.vfps[idx] = &vfpEntry{}
		l.vfpByReq[it.c] = idx
		// The SPU gets its (virtual) FP immediately; the physical
		// allocation proceeds in the background.
		if l.OnFallocResp != nil {
			l.OnFallocResp(now, it.c, MakeVFP(l.spe, idx))
		}
		l.net.Send(now, noc.Message{
			Src: l.id, Dst: l.dseID, Kind: noc.KindFallocReq,
			A: it.a, B: it.b | int64(idx+1)<<32, C: it.c, D: int64(l.id),
		})
		return
	}
	l.pendingLocal[it.c] = true
	l.net.Send(now, noc.Message{
		Src: l.id, Dst: l.dseID, Kind: noc.KindFallocReq,
		A: it.a, B: it.b, C: it.c, D: int64(l.id),
	})
}

// routeStore delivers a frame store to wherever fp lives.
func (l *LSE) routeStore(now sim.Cycle, fp int64, slot, value int64) {
	if IsMailbox(fp) {
		l.stats.MailboxPosts++
		l.net.Send(now, noc.Message{
			Src: l.id, Dst: l.ppeID, Kind: noc.KindMailboxPost, B: value, C: slot,
		})
		return
	}
	if !IsFP(fp) {
		l.Fault(fmt.Errorf("lse%d: store to non-FP value %#x", l.spe, fp))
		return
	}
	spe, idx, _ := SplitFP(fp)
	if spe != l.spe {
		l.stats.RemoteStores++
		l.net.Send(now, noc.Message{
			Src: l.id, Dst: l.lseEP(spe), Kind: noc.KindFrameStore,
			A: fp, B: value, C: slot,
		})
		return
	}
	if IsVFP(fp) {
		entry, ok := l.vfps[idx]
		if !ok {
			l.Fault(fmt.Errorf("lse%d: store to released %s", l.spe, FPString(fp)))
			return
		}
		if !entry.bound {
			l.stats.VFPBuffered++
			entry.buffered = append(entry.buffered, lseItem{kind: itemStore, b: value, c: slot})
			return
		}
		l.routeStore(now, entry.fp, slot, value)
		return
	}
	l.localFrameStore(now, idx, slot, value)
}

func (l *LSE) localFrameStore(now sim.Cycle, slot int, slotIdx, value int64) {
	if slot < 0 || slot >= len(l.slots) || l.slots[slot] == nil {
		l.Fault(fmt.Errorf("lse%d: store to unallocated frame %d", l.spe, slot))
		return
	}
	th := l.slots[slot]
	if th.SC <= 0 {
		l.Fault(fmt.Errorf("lse%d: store to %s with SC already 0", l.spe, th))
		return
	}
	if slotIdx < 0 || slotIdx >= program.MaxFrameSlots {
		l.Fault(fmt.Errorf("lse%d: frame slot index %d out of range", l.spe, slotIdx))
		return
	}
	addr := l.FrameAddr(slot) + slotIdx*8
	if err := l.store.Write64(addr, value); err != nil {
		l.Fault(err)
		return
	}
	l.store.Access(ls.PortLSE, now, 8)
	l.stats.LocalStores++
	th.SC--
	if th.SC == 0 {
		l.scZero(now, th)
	}
}

// scZero advances a thread whose inputs are complete: straight to Ready,
// or through the prefetch path when its template has a PF block.
func (l *LSE) scZero(now sim.Cycle, th *Thread) {
	l.emit(now, trace.StoresDone, th)
	tmpl := l.prog.Templates[th.Template]
	if len(tmpl.Blocks[program.PF]) == 0 {
		l.ready(now, th)
		return
	}
	if tmpl.PrefetchBytes > 0 {
		addr, ok := l.alloc.Alloc(tmpl.PrefetchBytes)
		if !ok {
			th.State = StateWaitBuffer
			l.pfPending = append(l.pfPending, th)
			l.stats.BufferWaits++
			return
		}
		th.BufAddr, th.BufBytes = addr, tmpl.PrefetchBytes
	}
	th.State = StateProgramDMA
	l.pfQ = append(l.pfQ, th)
	l.emit(now, trace.ProgramDMA, th)
	if l.OnWork != nil {
		l.OnWork(now)
	}
}

func (l *LSE) releaseSlot(now sim.Cycle, th *Thread) {
	if th.Slot < 0 {
		return // already freed
	}
	l.slots[th.Slot] = nil
	l.freeSlots = append(l.freeSlots, th.Slot)
	th.Slot = -1
	l.stats.Frees++
	l.emit(now, trace.FrameFreed, th)
	l.net.Send(now, noc.Message{Src: l.id, Dst: l.dseID, Kind: noc.KindFrameFreed})
}

func (l *LSE) threadDone(now sim.Cycle, th *Thread) {
	// Write-back PUTs issued in the PS block may still be queued or in
	// flight; the frame and prefetch buffer stay owned until the tag
	// group drains (otherwise a reused buffer could be overwritten
	// before the MFC reads it).
	if l.Outstanding != nil && l.Outstanding(th.Seq) > 0 {
		l.drainWait[th.Seq] = th
		return
	}
	l.finishDone(now, th)
}

func (l *LSE) finishDone(now sim.Cycle, th *Thread) {
	th.State = StateDone
	l.stats.Threads++
	l.emit(now, trace.Done, th)
	l.releaseSlot(now, th)
	if th.BufBytes > 0 {
		l.alloc.Free(th.BufAddr)
		th.BufBytes = 0
		// Heap space freed: retry threads waiting for buffers.
		for len(l.pfPending) > 0 {
			waiter := l.pfPending[0]
			tmpl := l.prog.Templates[waiter.Template]
			addr, ok := l.alloc.Alloc(tmpl.PrefetchBytes)
			if !ok {
				break
			}
			l.pfPending = l.pfPending[1:]
			waiter.BufAddr, waiter.BufBytes = addr, tmpl.PrefetchBytes
			waiter.State = StateProgramDMA
			l.pfQ = append(l.pfQ, waiter)
			if l.OnWork != nil {
				l.OnWork(now)
			}
		}
	}
	if th.VFPOwner >= 0 {
		if th.VFPOwner == l.id {
			l.releaseVFP(th.VFPIndex)
		} else {
			l.net.Send(now, noc.Message{
				Src: l.id, Dst: th.VFPOwner, Kind: noc.KindVFPRelease, A: int64(th.VFPIndex),
			})
		}
	}
}

func (l *LSE) releaseVFP(idx int) {
	entry, ok := l.vfps[idx]
	if !ok {
		l.Fault(fmt.Errorf("lse%d: release of unknown VFP %d", l.spe, idx))
		return
	}
	if len(entry.buffered) > 0 {
		l.Fault(fmt.Errorf("lse%d: VFP %d released with %d buffered stores",
			l.spe, idx, len(entry.buffered)))
		return
	}
	delete(l.vfps, idx)
}

func (l *LSE) handleNet(now sim.Cycle, msg noc.Message) {
	switch msg.Kind {
	case noc.KindFallocFwd:
		l.allocFrame(now, msg)
	case noc.KindFallocResp:
		if idx, ok := l.vfpByReq[msg.C]; ok {
			delete(l.vfpByReq, msg.C)
			entry := l.vfps[idx]
			entry.bound = true
			entry.fp = msg.A
			l.stats.VFPBinds++
			// Flush buffered stores through the normal path (they pay
			// LSE service slots like any other operation).
			for _, b := range entry.buffered {
				l.push(now, lseItem{kind: itemStore, a: msg.A, b: b.b, c: b.c})
			}
			entry.buffered = nil
			return
		}
		if l.pendingLocal[msg.C] {
			delete(l.pendingLocal, msg.C)
			if l.OnFallocResp != nil {
				l.OnFallocResp(now, msg.C, msg.A)
			}
			return
		}
		l.Fault(fmt.Errorf("lse%d: falloc response for unknown request %d", l.spe, msg.C))
	case noc.KindFrameStore:
		l.routeStore(now, msg.A, msg.C, msg.B)
	case noc.KindVFPRelease:
		l.releaseVFP(int(msg.A))
	default:
		l.Fault(fmt.Errorf("lse%d received unexpected %s", l.spe, msg))
	}
}

// allocFrame services a DSE-forwarded FALLOC.
func (l *LSE) allocFrame(now sim.Cycle, msg noc.Message) {
	if len(l.freeSlots) == 0 {
		l.Fault(fmt.Errorf("lse%d: FallocFwd with no free frames (DSE accounting bug)", l.spe))
		return
	}
	slot := l.freeSlots[len(l.freeSlots)-1]
	l.freeSlots = l.freeSlots[:len(l.freeSlots)-1]
	l.threadSeq++
	template := int(msg.A & 0xFFFFFFFF)
	sc := int(msg.B & 0xFFFFFFFF)
	vfpInfo := msg.B >> 32
	th := &Thread{
		Seq:      l.threadSeq,
		Slot:     slot,
		SPE:      l.spe,
		Template: template,
		State:    StateWaitStores,
		SC:       sc,
		VFPOwner: -1,
	}
	if vfpInfo > 0 {
		th.VFPOwner = int(msg.D)
		th.VFPIndex = int(vfpInfo - 1)
	}
	l.slots[slot] = th
	l.stats.Fallocs++
	l.emit(now, trace.FrameAlloc, th)
	if sc == 0 {
		l.scZero(now, th)
	}
	l.net.Send(now, noc.Message{
		Src: l.id, Dst: int(msg.D), Kind: noc.KindFallocResp,
		A: MakeFP(l.spe, slot), C: msg.C,
	})
}

// DumpState implements sim.StateDumper.
func (l *LSE) DumpState() string {
	live := 0
	for _, t := range l.slots {
		if t != nil {
			live++
		}
	}
	return fmt.Sprintf("frames=%d/%d ready=%d pf=%d waitDMA=%d drain=%d pending-buffer=%d inbox=%d",
		live, l.cfg.NumFrames, len(l.readyQ), len(l.pfQ), len(l.waitDMA), len(l.drainWait), len(l.pfPending), len(l.inbox)-l.inboxHead)
}
