package dta

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ls"
	"repro/internal/noc"
	"repro/internal/program"
	"repro/internal/sim"
)

// Endpoint layout for the test rig.
const (
	epLSE0 = 0
	epLSE1 = 1
	epDSE  = 10
	epPPE  = 20
)

// rig wires two LSEs, one DSE and a PPE sink.
type rig struct {
	e       *sim.Engine
	net     *noc.Network
	lses    [2]*LSE
	stores  [2]*ls.LocalStore
	dse     *DSE
	prog    *program.Program
	mailbox []int64

	fallocs map[int64]int64 // reqID -> fp
	works   [2]int          // OnWork calls per LSE
}

type ppeSink struct{ r *rig }

func (p *ppeSink) Deliver(now sim.Cycle, m noc.Message) {
	if m.Kind != noc.KindMailboxPost {
		panic("ppe got " + m.String())
	}
	p.r.mailbox = append(p.r.mailbox, m.B)
}

// testProgram: template 0 has no PF block, template 1 has one (with a
// 64-byte prefetch reservation).
func testProgram(t testing.TB) *program.Program {
	b := program.NewBuilder("dtatest")
	plain := b.Template("plain")
	plain.PL().Load(program.R(1), 0)
	plain.PS().Ffree().Stop()
	withPF := b.Template("withpf")
	withPF.Block(program.PF).Nop()
	withPF.PL().Load(program.R(1), 0)
	withPF.PS().Ffree().Stop()
	b.Entry(plain, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build test program: %v", err)
	}
	p.Templates[1].PrefetchBytes = 64
	return p
}

func newRig(t testing.TB, cfg LSEConfig, heapBytes int) *rig {
	r := &rig{e: sim.NewEngine(), fallocs: map[int64]int64{}}
	r.prog = testProgram(t)
	r.net = noc.New(noc.DefaultConfig())
	r.net.Attach(r.e.Register(r.net))
	lseEP := func(spe int) int { return spe } // epLSE0/1 == spe index
	for i := 0; i < 2; i++ {
		i := i
		r.stores[i] = ls.New(ls.DefaultConfig())
		alloc := ls.NewAllocator(64*1024, heapBytes)
		r.lses[i] = NewLSE(cfg, i, i, epDSE, epPPE, r.net, r.stores[i], alloc, 16*1024, r.prog, lseEP)
		r.lses[i].Attach(r.e.Register(r.lses[i]))
		r.net.Register(i, r.lses[i])
		r.lses[i].OnFallocResp = func(now sim.Cycle, reqID, fp int64) { r.fallocs[reqID] = fp }
		r.lses[i].OnWork = func(now sim.Cycle) { r.works[i]++ }
		r.lses[i].Fault = func(err error) { t.Fatalf("lse fault: %v", err) }
	}
	r.dse = NewDSE(DefaultDSEConfig(), epDSE, 0, r.net, []int{epLSE0, epLSE1}, cfg.NumFrames, nil)
	r.dse.Attach(r.e.Register(r.dse))
	r.net.Register(epDSE, r.dse)
	r.net.Register(epPPE, &ppeSink{r: r})
	return r
}

// runQuiet advances until the rig is idle (deadlock = drained) or limit.
func (r *rig) runQuiet(t testing.TB, limit sim.Cycle) {
	_, err := r.e.Run(r.e.Now() + limit)
	if err == nil {
		return
	}
	if _, ok := err.(*sim.ErrDeadlock); !ok {
		t.Fatalf("Run: %v", err)
	}
}

func TestFallocRoundTrip(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	r.lses[0].RequestFalloc(0, 0, 2, 100)
	r.runQuiet(t, 1000)
	fp, ok := r.fallocs[100]
	if !ok {
		t.Fatal("no falloc response")
	}
	if !IsFP(fp) || IsVFP(fp) {
		t.Fatalf("fp = %s", FPString(fp))
	}
	spe, slot, err := SplitFP(fp)
	if err != nil || slot < 0 {
		t.Fatalf("split: %d %d %v", spe, slot, err)
	}
	if r.lses[spe].slots[slot] == nil {
		t.Fatal("no thread allocated at FP")
	}
	if got := r.lses[spe].slots[slot].SC; got != 2 {
		t.Fatalf("SC = %d, want 2", got)
	}
}

func TestDSELoadBalancesAcrossLSEs(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	for i := int64(0); i < 8; i++ {
		r.lses[0].RequestFalloc(0, 0, 1, i)
	}
	r.runQuiet(t, 5000)
	if len(r.fallocs) != 8 {
		t.Fatalf("responses = %d, want 8", len(r.fallocs))
	}
	perSPE := map[int]int{}
	for _, fp := range r.fallocs {
		spe, _, _ := SplitFP(fp)
		perSPE[spe]++
	}
	if perSPE[0] != 4 || perSPE[1] != 4 {
		t.Fatalf("distribution = %v, want 4/4", perSPE)
	}
}

// alloc allocates a frame of template tmpl with sc and returns its FP.
func (r *rig) alloc(t testing.TB, tmpl, sc int, reqID int64) int64 {
	r.lses[0].RequestFalloc(r.e.Now(), tmpl, sc, reqID)
	r.runQuiet(t, 2000)
	fp, ok := r.fallocs[reqID]
	if !ok {
		t.Fatalf("no response for req %d", reqID)
	}
	return fp
}

func TestSCCountdownMakesThreadReady(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	fp := r.alloc(t, 0, 3, 1)
	spe, slot, _ := SplitFP(fp)
	th := r.lses[spe].slots[slot]

	for i := 0; i < 3; i++ {
		if th.State != StateWaitStores {
			t.Fatalf("state after %d stores = %s", i, th.State)
		}
		r.lses[0].StoreTo(r.e.Now(), fp, i, int64(100+i))
		r.runQuiet(t, 1000)
	}
	if th.State != StateReady {
		t.Fatalf("state = %s, want ready", th.State)
	}
	// Frame contents landed in the owner's local store.
	for i := 0; i < 3; i++ {
		v, err := r.stores[spe].Read64(r.lses[spe].FrameAddr(slot) + int64(i)*8)
		if err != nil || v != int64(100+i) {
			t.Fatalf("frame[%d] = %d, %v", i, v, err)
		}
	}
	// Dispatch works.
	got, kind := r.lses[spe].NextWork(r.e.Now())
	if got != th || kind != WorkThread {
		t.Fatalf("NextWork = %v, %v", got, kind)
	}
	if th.State != StateRunning {
		t.Fatalf("state = %s, want running", th.State)
	}
}

// Property: any permutation of SC stores readies the thread exactly once
// after the last store.
func TestSCAnyOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		r := newRig(t, DefaultLSEConfig(), 4096)
		sc := 2 + rng.Intn(6)
		fp := r.alloc(t, 0, sc, 1)
		spe, slot, _ := SplitFP(fp)
		th := r.lses[spe].slots[slot]
		order := rng.Intn(2) // 0: from lse0, 1: alternate
		for i := 0; i < sc; i++ {
			src := 0
			if order == 1 {
				src = i % 2
			}
			if th.State == StateReady {
				return false // ready too early
			}
			r.lses[src].StoreTo(r.e.Now(), fp, i, int64(i))
			r.runQuiet(t, 2000)
		}
		return th.State == StateReady && th.SC == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteStoreRouting(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	// Allocate until we land a frame on SPE 1.
	var fp int64
	for i := int64(0); ; i++ {
		fp = r.alloc(t, 0, 1, i)
		if spe, _, _ := SplitFP(fp); spe == 1 {
			break
		}
		if i > 4 {
			t.Fatal("never allocated on SPE 1")
		}
	}
	// Store issued on SPE 0 must cross the network.
	r.lses[0].StoreTo(r.e.Now(), fp, 0, 777)
	r.runQuiet(t, 2000)
	spe, slot, _ := SplitFP(fp)
	if r.lses[spe].slots[slot].State != StateReady {
		t.Fatalf("state = %s", r.lses[spe].slots[slot].State)
	}
	if r.lses[0].Stats().RemoteStores == 0 {
		t.Fatal("store did not count as remote")
	}
	v, _ := r.stores[1].Read64(r.lses[1].FrameAddr(slot))
	if v != 777 {
		t.Fatalf("frame value = %d", v)
	}
}

func TestMailboxPostReachesPPE(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	r.lses[0].StoreTo(0, MailboxFP, 0, 4242)
	r.runQuiet(t, 1000)
	if len(r.mailbox) != 1 || r.mailbox[0] != 4242 {
		t.Fatalf("mailbox = %v", r.mailbox)
	}
}

func TestPFPathAllocatesBufferAndWaitsDMA(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	outstanding := 1
	r.lses[0].Outstanding = func(tag int64) int { return outstanding }
	r.lses[1].Outstanding = func(tag int64) int { return outstanding }

	fp := r.alloc(t, 1, 1, 1) // template 1 has a PF block
	spe, slot, _ := SplitFP(fp)
	lse := r.lses[spe]
	th := lse.slots[slot]
	r.lses[0].StoreTo(r.e.Now(), fp, 0, 1)
	r.runQuiet(t, 2000)

	if th.State != StateProgramDMA {
		t.Fatalf("state = %s, want program-dma", th.State)
	}
	if th.BufBytes != 64 || th.BufAddr == 0 {
		t.Fatalf("buffer = %#x/%d", th.BufAddr, th.BufBytes)
	}
	got, kind := lse.NextWork(r.e.Now())
	if got != th || kind != WorkPF {
		t.Fatalf("NextWork = %v, %v", got, kind)
	}
	// PF block done with DMA outstanding: thread parks in WaitDMA.
	lse.PFDone(r.e.Now(), th)
	if th.State != StateWaitDMA {
		t.Fatalf("state = %s, want wait-dma", th.State)
	}
	// Tag drains: thread becomes ready.
	outstanding = 0
	lse.TagIdle(r.e.Now(), th.Seq)
	if th.State != StateReady {
		t.Fatalf("state = %s, want ready", th.State)
	}
}

func TestPFDoneWithNoOutstandingGoesStraightReady(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	r.lses[0].Outstanding = func(tag int64) int { return 0 }
	r.lses[1].Outstanding = func(tag int64) int { return 0 }
	fp := r.alloc(t, 1, 1, 1)
	spe, slot, _ := SplitFP(fp)
	lse := r.lses[spe]
	th := lse.slots[slot]
	r.lses[0].StoreTo(r.e.Now(), fp, 0, 1)
	r.runQuiet(t, 2000)
	lse.NextWork(r.e.Now())
	lse.PFDone(r.e.Now(), th)
	if th.State != StateReady {
		t.Fatalf("state = %s, want ready", th.State)
	}
}

func TestPrefetchHeapExhaustionQueuesThread(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 64) // room for exactly one 64B buffer
	r.lses[0].Outstanding = func(tag int64) int { return 0 }
	r.lses[1].Outstanding = func(tag int64) int { return 0 }

	// Two PF threads on (potentially) the same LSE. Force same LSE by
	// filling: both land wherever DSE sends them; to make it
	// deterministic allocate both and drive the one that shares an LSE.
	fpA := r.alloc(t, 1, 1, 1)
	speA, slotA, _ := SplitFP(fpA)
	// Allocate on the same SPE by requesting until it matches.
	var fpB int64
	for i := int64(2); ; i++ {
		fpB = r.alloc(t, 1, 1, i)
		if spe, _, _ := SplitFP(fpB); spe == speA {
			break
		}
		if i > 6 {
			t.Fatal("never matched SPE")
		}
	}
	_, slotB, _ := SplitFP(fpB)
	lse := r.lses[speA]
	r.lses[0].StoreTo(r.e.Now(), fpA, 0, 1)
	r.lses[0].StoreTo(r.e.Now(), fpB, 0, 1)
	r.runQuiet(t, 3000)

	thA, thB := lse.slots[slotA], lse.slots[slotB]
	if thA.State != StateProgramDMA {
		t.Fatalf("A state = %s", thA.State)
	}
	if thB.State != StateWaitBuffer {
		t.Fatalf("B state = %s, want wait-buffer", thB.State)
	}
	if lse.Stats().BufferWaits != 1 {
		t.Fatalf("BufferWaits = %d", lse.Stats().BufferWaits)
	}
	// Run A to completion: B gets the freed buffer.
	lse.NextWork(r.e.Now())
	lse.PFDone(r.e.Now(), thA)
	lse.NextWork(r.e.Now()) // dispatch A as thread
	lse.ThreadDone(r.e.Now(), thA)
	r.runQuiet(t, 2000)
	if thB.State != StateProgramDMA {
		t.Fatalf("B state after free = %s, want program-dma", thB.State)
	}
}

func TestFrameReuseAfterFree(t *testing.T) {
	cfg := DefaultLSEConfig()
	cfg.NumFrames = 1 // one frame per LSE: two allocs fill the node
	r := newRig(t, cfg, 4096)
	fp1 := r.alloc(t, 0, 1, 1)
	fp2 := r.alloc(t, 0, 1, 2)
	_, _ = fp1, fp2
	// Third request stalls at the DSE.
	r.lses[0].RequestFalloc(r.e.Now(), 0, 1, 3)
	r.runQuiet(t, 2000)
	if _, ok := r.fallocs[3]; ok {
		t.Fatal("third falloc satisfied with full node")
	}
	// Completing thread 1 frees its frame and unblocks the queue.
	spe, slot, _ := SplitFP(fp1)
	th := r.lses[spe].slots[slot]
	r.lses[spe].StoreTo(r.e.Now(), fp1, 0, 5)
	r.runQuiet(t, 2000)
	r.lses[spe].NextWork(r.e.Now())
	r.lses[spe].ThreadDone(r.e.Now(), th)
	r.runQuiet(t, 3000)
	if _, ok := r.fallocs[3]; !ok {
		t.Fatal("freed frame did not unblock pending falloc")
	}
}

func TestVirtualFPImmediateResponseAndBuffering(t *testing.T) {
	cfg := DefaultLSEConfig()
	cfg.VirtualFP = true
	r := newRig(t, cfg, 4096)
	// Request and store in the same cycle burst: with VFP the response
	// arrives without any DSE round trip, so the store targets an
	// unbound VFP and must be buffered.
	r.lses[0].RequestFalloc(0, 0, 1, 1)
	// Process only a few cycles: enough for the local response, not for
	// the DSE round trip.
	_, _ = r.e.Run(3)
	fp, ok := r.fallocs[1]
	if !ok {
		t.Fatal("VFP response not immediate")
	}
	if !IsVFP(fp) {
		t.Fatalf("fp = %s, want virtual", FPString(fp))
	}
	r.lses[0].StoreTo(r.e.Now(), fp, 0, 999)
	r.runQuiet(t, 3000)
	if r.lses[0].Stats().VFPBuffered == 0 {
		t.Fatal("store was not buffered while unbound")
	}
	if r.lses[0].Stats().VFPBinds != 1 {
		t.Fatalf("binds = %d", r.lses[0].Stats().VFPBinds)
	}
	// After binding and flushing, the physical thread must be ready.
	ready := false
	for _, l := range r.lses {
		for _, th := range l.slots {
			if th != nil && th.State == StateReady {
				ready = true
			}
		}
	}
	if !ready {
		t.Fatal("buffered store never reached the physical frame")
	}
}

func TestVFPReleaseOnThreadDone(t *testing.T) {
	cfg := DefaultLSEConfig()
	cfg.VirtualFP = true
	r := newRig(t, cfg, 4096)
	fp := r.alloc(t, 0, 1, 1)
	if !IsVFP(fp) {
		t.Fatalf("fp = %s", FPString(fp))
	}
	r.lses[0].StoreTo(r.e.Now(), fp, 0, 1)
	r.runQuiet(t, 3000)
	// Find the physical thread and complete it.
	var th *Thread
	var owner *LSE
	for _, l := range r.lses {
		for _, cand := range l.slots {
			if cand != nil {
				th, owner = cand, l
			}
		}
	}
	if th == nil {
		t.Fatal("no physical thread")
	}
	owner.NextWork(r.e.Now())
	owner.ThreadDone(r.e.Now(), th)
	r.runQuiet(t, 2000)
	if len(r.lses[0].vfps) != 0 {
		t.Fatalf("VFP table not released: %d entries", len(r.lses[0].vfps))
	}
}

func TestStoreFaults(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	var fault error
	r.lses[0].Fault = func(err error) { fault = err }
	// Store to a slot that was never allocated.
	r.lses[0].StoreTo(0, MakeFP(0, 5), 0, 1)
	r.runQuiet(t, 1000)
	if fault == nil || !strings.Contains(fault.Error(), "unallocated") {
		t.Fatalf("fault = %v", fault)
	}
}

func TestStoreToNonFPFaults(t *testing.T) {
	r := newRig(t, DefaultLSEConfig(), 4096)
	var fault error
	r.lses[0].Fault = func(err error) { fault = err }
	r.lses[0].StoreTo(0, 12345, 0, 1)
	r.runQuiet(t, 1000)
	if fault == nil || !strings.Contains(fault.Error(), "non-FP") {
		t.Fatalf("fault = %v", fault)
	}
}

func TestBackpressure(t *testing.T) {
	cfg := DefaultLSEConfig()
	cfg.InboxCap = 2
	r := newRig(t, cfg, 4096)
	if !r.lses[0].CanAccept() {
		t.Fatal("fresh LSE should accept")
	}
	r.lses[0].StoreTo(0, MailboxFP, 0, 1)
	r.lses[0].StoreTo(0, MailboxFP, 1, 2)
	if r.lses[0].CanAccept() {
		t.Fatal("full inbox should refuse")
	}
	r.runQuiet(t, 1000)
	if !r.lses[0].CanAccept() {
		t.Fatal("drained inbox should accept again")
	}
}

func TestFPEncoding(t *testing.T) {
	fp := MakeFP(3, 17)
	spe, slot, err := SplitFP(fp)
	if err != nil || spe != 3 || slot != 17 {
		t.Fatalf("SplitFP = %d,%d,%v", spe, slot, err)
	}
	if IsVFP(fp) || IsMailbox(fp) || !IsFP(fp) {
		t.Fatal("FP misclassified")
	}
	v := MakeVFP(2, 9)
	if !IsVFP(v) {
		t.Fatal("VFP not recognised")
	}
	if IsFP(0) || IsFP(12345) {
		t.Fatal("plain integers classified as FP")
	}
	if !IsMailbox(MailboxFP) {
		t.Fatal("mailbox not recognised")
	}
	if _, _, err := SplitFP(99); err == nil {
		t.Fatal("SplitFP accepted non-FP")
	}
	if !strings.Contains(FPString(v), "VFP") {
		t.Fatalf("FPString = %s", FPString(v))
	}
}

func TestMultiNodeForwarding(t *testing.T) {
	// Two DSEs, one LSE each, one frame each. Node 0 full -> forward to
	// node 1.
	e := sim.NewEngine()
	net := noc.New(noc.DefaultConfig())
	net.Attach(e.Register(net))
	prog := testProgram(t)
	const (
		ep0, ep1       = 0, 1
		dse0ID, dse1ID = 10, 11
		ppeID          = 20
	)
	fallocs := map[int64]int64{}
	mkLSE := func(id, spe, dseID int) *LSE {
		cfg := DefaultLSEConfig()
		cfg.NumFrames = 1
		store := ls.New(ls.DefaultConfig())
		alloc := ls.NewAllocator(64*1024, 4096)
		l := NewLSE(cfg, id, spe, dseID, ppeID, net, store, alloc, 16*1024, prog,
			func(spe int) int { return spe })
		l.Attach(e.Register(l))
		net.Register(id, l)
		l.OnFallocResp = func(now sim.Cycle, reqID, fp int64) { fallocs[reqID] = fp }
		return l
	}
	lse0 := mkLSE(ep0, 0, dse0ID)
	mkLSE(ep1, 1, dse1ID)
	dse0 := NewDSE(DefaultDSEConfig(), dse0ID, 0, net, []int{ep0}, 1, []int{dse1ID})
	dse0.Attach(e.Register(dse0))
	net.Register(dse0ID, dse0)
	dse1 := NewDSE(DefaultDSEConfig(), dse1ID, 1, net, []int{ep1}, 1, []int{dse0ID})
	dse1.Attach(e.Register(dse1))
	net.Register(dse1ID, dse1)
	net.Register(ppeID, &nullEP{})

	lse0.RequestFalloc(0, 0, 1, 1)
	lse0.RequestFalloc(0, 0, 1, 2)
	if _, err := e.Run(5000); err != nil {
		if _, ok := err.(*sim.ErrDeadlock); !ok {
			t.Fatalf("Run: %v", err)
		}
	}
	if len(fallocs) != 2 {
		t.Fatalf("fallocs = %v", fallocs)
	}
	spes := map[int]bool{}
	for _, fp := range fallocs {
		spe, _, _ := SplitFP(fp)
		spes[spe] = true
	}
	if !spes[0] || !spes[1] {
		t.Fatalf("frames not spread across nodes: %v", spes)
	}
	if dse0.Stats().Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", dse0.Stats().Forwards)
	}
}

type nullEP struct{}

func (nullEP) Deliver(sim.Cycle, noc.Message) {}
