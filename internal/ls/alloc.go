package ls

import (
	"fmt"
	"sort"
)

// Align is the allocation granularity of the prefetch heap; DMA targets
// are 16-byte aligned as on the Cell MFC.
const Align = 16

type span struct{ addr, size int }

// Allocator manages the prefetch-buffer region of a local store with a
// first-fit free list and coalescing on free. It is deterministic and
// detects double-frees and foreign frees.
type Allocator struct {
	base, size int
	free       []span // sorted by addr, non-adjacent
	live       map[int]int
	liveBytes  int
	peakBytes  int
}

// NewAllocator manages [base, base+size).
func NewAllocator(base, size int) *Allocator {
	if size < 0 || base < 0 {
		panic("ls: negative allocator region")
	}
	a := &Allocator{live: make(map[int]int)}
	a.Reset(base, size)
	return a
}

// Reset re-initialises the allocator over [base, base+size), dropping
// all live allocations and statistics — machine reuse with a possibly
// different heap layout (the region depends on the loaded program).
func (a *Allocator) Reset(base, size int) {
	if size < 0 || base < 0 {
		panic("ls: negative allocator region")
	}
	a.base, a.size = base, size
	a.free = a.free[:0]
	if size > 0 {
		a.free = append(a.free, span{addr: base, size: size})
	}
	clear(a.live)
	a.liveBytes = 0
	a.peakBytes = 0
}

func roundUp(n int) int {
	if n <= 0 {
		return Align
	}
	return (n + Align - 1) &^ (Align - 1)
}

// Alloc reserves n bytes (rounded up to Align) and returns the address.
// ok is false when no contiguous span fits.
func (a *Allocator) Alloc(n int) (addr int, ok bool) {
	n = roundUp(n)
	for i := range a.free {
		if a.free[i].size >= n {
			addr = a.free[i].addr
			a.free[i].addr += n
			a.free[i].size -= n
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.live[addr] = n
			a.liveBytes += n
			if a.liveBytes > a.peakBytes {
				a.peakBytes = a.liveBytes
			}
			return addr, true
		}
	}
	return 0, false
}

// Free releases the allocation at addr. It panics on double-free or on
// an address that was never allocated (these are machine bugs, not
// recoverable conditions).
func (a *Allocator) Free(addr int) {
	n, ok := a.live[addr]
	if !ok {
		panic(fmt.Sprintf("ls: free of unallocated address %#x", addr))
	}
	delete(a.live, addr)
	a.liveBytes -= n
	// Insert keeping the list sorted, then coalesce with neighbours.
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{addr: addr, size: n}
	// Coalesce with next.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Coalesce with previous.
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// LiveBytes returns the currently allocated byte count.
func (a *Allocator) LiveBytes() int { return a.liveBytes }

// PeakBytes returns the high-water mark of allocated bytes.
func (a *Allocator) PeakBytes() int { return a.peakBytes }

// FreeBytes returns the total free capacity (possibly fragmented).
func (a *Allocator) FreeBytes() int {
	total := 0
	for _, s := range a.free {
		total += s.size
	}
	return total
}

// LargestFree returns the largest contiguous free span.
func (a *Allocator) LargestFree() int {
	max := 0
	for _, s := range a.free {
		if s.size > max {
			max = s.size
		}
	}
	return max
}
