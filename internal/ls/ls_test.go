package ls

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAccessLatencyAndOccupancy(t *testing.T) {
	l := New(Config{SizeBytes: 1024, Latency: 6, PortWidth: 16})
	// 8-byte access: 1 cycle occupancy, ready at now+1-1+6.
	if got := l.Access(PortSPU, 10, 8); got != 16 {
		t.Fatalf("ready at %d, want 16", got)
	}
	// 128-byte access: 8 cycles occupancy.
	if got := l.Access(PortMFC, 10, 128); got != 10+8-1+6 {
		t.Fatalf("ready at %d, want %d", got, 10+8-1+6)
	}
}

func TestPortContentionQueues(t *testing.T) {
	l := New(Config{SizeBytes: 1024, Latency: 6, PortWidth: 16})
	first := l.Access(PortSPU, 0, 64) // 4 cycles occupancy: busy until 4
	second := l.Access(PortSPU, 1, 8) // must wait until cycle 4
	if second <= first-2 {
		t.Fatalf("second access at %d did not queue behind first (%d)", second, first)
	}
	if got := l.Stats().Contention[PortSPU]; got != 3 {
		t.Fatalf("contention = %d, want 3", got)
	}
}

func TestPortsAreIndependent(t *testing.T) {
	l := New(Config{SizeBytes: 1024, Latency: 6, PortWidth: 16})
	l.Access(PortSPU, 0, 64)
	ready := l.Access(PortMFC, 0, 8) // different port: no queueing
	if ready != 6 {
		t.Fatalf("MFC access ready at %d, want 6", ready)
	}
	if l.Stats().Contention[PortMFC] != 0 {
		t.Fatal("unexpected cross-port contention")
	}
}

func TestFunctionalRoundTrip(t *testing.T) {
	l := New(DefaultConfig())
	if err := l.Write64(128, -99); err != nil {
		t.Fatal(err)
	}
	v, err := l.Read64(128)
	if err != nil || v != -99 {
		t.Fatalf("Read64 = %d, %v", v, err)
	}
	if err := l.Write32(200, -7); err != nil {
		t.Fatal(err)
	}
	v, err = l.Read32(200)
	if err != nil || v != -7 {
		t.Fatalf("Read32 = %d, %v (sign extension)", v, err)
	}
	data := []byte{9, 8, 7}
	if err := l.WriteBytes(300, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := l.ReadBytes(300, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %v", got)
	}
}

func TestBoundsChecked(t *testing.T) {
	l := New(Config{SizeBytes: 256, Latency: 6, PortWidth: 16})
	if err := l.Write64(252, 1); err == nil {
		t.Fatal("straddling write accepted")
	}
	if _, err := l.Read32(-1); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestAllocatorBasics(t *testing.T) {
	a := NewAllocator(0x1000, 4096)
	p1, ok := a.Alloc(100)
	if !ok || p1 != 0x1000 {
		t.Fatalf("Alloc = %#x, %v", p1, ok)
	}
	p2, ok := a.Alloc(16)
	if !ok || p2 != 0x1000+112 { // 100 rounds to 112
		t.Fatalf("second Alloc = %#x, want %#x", p2, 0x1000+112)
	}
	if a.LiveBytes() != 128 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
	a.Free(p1)
	a.Free(p2)
	if a.LiveBytes() != 0 || a.FreeBytes() != 4096 || a.LargestFree() != 4096 {
		t.Fatalf("after frees: live=%d free=%d largest=%d",
			a.LiveBytes(), a.FreeBytes(), a.LargestFree())
	}
	if a.PeakBytes() != 128 {
		t.Fatalf("PeakBytes = %d", a.PeakBytes())
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(0, 64)
	if _, ok := a.Alloc(48); !ok {
		t.Fatal("first alloc failed")
	}
	if _, ok := a.Alloc(32); ok {
		t.Fatal("over-allocation succeeded")
	}
	if _, ok := a.Alloc(16); !ok {
		t.Fatal("exact-fit tail alloc failed")
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(0, 256)
	p, _ := a.Alloc(16)
	a.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p)
}

func TestAllocatorForeignFreePanics(t *testing.T) {
	a := NewAllocator(0, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign free did not panic")
		}
	}()
	a.Free(0x40)
}

// Property: random alloc/free sequences never hand out overlapping
// blocks, and freeing everything restores a single maximal span.
func TestAllocatorProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		const size = 1 << 14
		a := NewAllocator(0, size)
		type block struct{ addr, n int }
		var liveList []block
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(liveList) == 0 {
				n := 1 + rng.Intn(500)
				addr, ok := a.Alloc(n)
				if !ok {
					continue
				}
				rounded := roundUp(n)
				// Overlap check against all live blocks.
				for _, b := range liveList {
					if addr < b.addr+b.n && b.addr < addr+rounded {
						return false
					}
				}
				if addr < 0 || addr+rounded > size {
					return false
				}
				liveList = append(liveList, block{addr, rounded})
			} else {
				i := rng.Intn(len(liveList))
				a.Free(liveList[i].addr)
				liveList = append(liveList[:i], liveList[i+1:]...)
			}
		}
		for _, b := range liveList {
			a.Free(b.addr)
		}
		return a.FreeBytes() == size && a.LargestFree() == size && a.LiveBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
