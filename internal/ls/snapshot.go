package ls

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/snap"
)

// Snapshot serialises the local store: contents (trailing zeros
// trimmed — the restore zeroes the array first, so only the written
// prefix costs bytes), port bookings and statistics.
func (l *LocalStore) Snapshot(w *snap.Writer) {
	w.Int(len(l.data))
	end := l.dirty // bytes beyond the high-water mark are known zero
	for end > 0 && l.data[end-1] == 0 {
		end--
	}
	w.WriteBytes(l.data[:end])
	for _, f := range l.portFree {
		w.I64(int64(f))
	}
	for _, v := range l.stats.Accesses {
		w.I64(v)
	}
	for _, v := range l.stats.Bytes {
		w.I64(v)
	}
	for _, v := range l.stats.Contention {
		w.I64(v)
	}
}

// Restore rewinds the local store to a snapshot taken on a store of the
// same size.
func (l *LocalStore) Restore(r *snap.Reader) error {
	size := r.Int()
	if r.Err() == nil && size != len(l.data) {
		return fmt.Errorf("ls: snapshot store size %d, this store %d", size, len(l.data))
	}
	data := r.ReadBytes()
	if r.Err() != nil {
		return r.Err()
	}
	if len(data) > len(l.data) {
		return fmt.Errorf("ls: snapshot content %d bytes exceeds store %d", len(data), len(l.data))
	}
	clear(l.data[:l.dirty])
	copy(l.data, data)
	l.dirty = len(data)
	for i := range l.portFree {
		l.portFree[i] = sim.Cycle(r.I64())
	}
	for i := range l.stats.Accesses {
		l.stats.Accesses[i] = r.I64()
	}
	for i := range l.stats.Bytes {
		l.stats.Bytes[i] = r.I64()
	}
	for i := range l.stats.Contention {
		l.stats.Contention[i] = r.I64()
	}
	return r.Err()
}

// Snapshot serialises the allocator: region, free list and live
// allocations (sorted by address for deterministic bytes).
func (a *Allocator) Snapshot(w *snap.Writer) {
	w.Int(a.base)
	w.Int(a.size)
	w.Int(len(a.free))
	for _, s := range a.free {
		w.Int(s.addr)
		w.Int(s.size)
	}
	addrs := make([]int, 0, len(a.live))
	for addr := range a.live {
		addrs = append(addrs, addr)
	}
	sort.Ints(addrs)
	w.Int(len(addrs))
	for _, addr := range addrs {
		w.Int(addr)
		w.Int(a.live[addr])
	}
	w.Int(a.liveBytes)
	w.Int(a.peakBytes)
}

// Restore rewinds the allocator to a snapshot. The region must match
// the allocator's current layout (same program, same configuration).
func (a *Allocator) Restore(r *snap.Reader) error {
	base, size := r.Int(), r.Int()
	if r.Err() == nil && (base != a.base || size != a.size) {
		return fmt.Errorf("ls: snapshot allocator region [%d,+%d), this allocator [%d,+%d)",
			base, size, a.base, a.size)
	}
	a.free = a.free[:0]
	nf := r.Int()
	for i := 0; i < nf; i++ {
		a.free = append(a.free, span{addr: r.Int(), size: r.Int()})
	}
	clear(a.live)
	nl := r.Int()
	for i := 0; i < nl; i++ {
		addr := r.Int()
		a.live[addr] = r.Int()
	}
	a.liveBytes = r.Int()
	a.peakBytes = r.Int()
	return r.Err()
}
