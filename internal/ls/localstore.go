// Package ls models the per-SPE Local Store of the CellDTA machine
// (paper Table 2: 156 kB, 6-cycle latency, 3 ports). The local store
// holds thread code, the frames managed by the LSE, and the prefetch
// buffers that the DMA engine fills with global data.
//
// Three ports mirror the paper's configuration: one serves the SPU's
// LOAD/STORE/LSRD/LSWR accesses, one serves DMA traffic from the MFC and
// one serves the LSE's frame writes (arriving remote stores), so DMA and
// scheduler traffic do not steal SPU bandwidth (which is why the paper
// sees LS stalls "mostly hidden").
package ls

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
)

// Port selects one of the local store's access ports.
type Port int

const (
	PortSPU Port = iota // SPU pipeline accesses
	PortMFC             // DMA engine reads/writes
	PortLSE             // frame writes from the scheduler
	NumPorts
)

func (p Port) String() string {
	switch p {
	case PortSPU:
		return "spu"
	case PortMFC:
		return "mfc"
	case PortLSE:
		return "lse"
	}
	return fmt.Sprintf("port(%d)", int(p))
}

// Config holds the local-store parameters.
type Config struct {
	SizeBytes int // 156 kB in the paper
	Latency   int // access latency in cycles (6)
	PortWidth int // bytes per port per cycle (16)
}

// DefaultConfig returns the paper's local-store parameters.
func DefaultConfig() Config {
	return Config{SizeBytes: 156 * 1024, Latency: 6, PortWidth: 16}
}

// Stats aggregates local-store activity.
type Stats struct {
	Accesses   [NumPorts]int64
	Bytes      [NumPorts]int64
	Contention [NumPorts]int64 // cycles requests waited for a busy port
}

// LocalStore is the functional and timing model of one SPE's local
// store. It is passive: co-located components call Access for timing and
// the Read*/Write* methods for data.
type LocalStore struct {
	cfg      Config
	data     []byte
	dirty    int // bytes [0,dirty) may be non-zero; the rest is known zero
	portFree [NumPorts]sim.Cycle
	stats    Stats
}

// New returns a zeroed local store.
func New(cfg Config) *LocalStore {
	if cfg.SizeBytes <= 0 || cfg.PortWidth <= 0 {
		panic("ls: non-positive configuration")
	}
	return &LocalStore{cfg: cfg, data: make([]byte, cfg.SizeBytes)}
}

// Size returns the capacity in bytes.
func (l *LocalStore) Size() int { return l.cfg.SizeBytes }

// Latency returns the configured access latency.
func (l *LocalStore) Latency() int { return l.cfg.Latency }

// Stats returns a copy of the accumulated statistics.
func (l *LocalStore) Stats() Stats { return l.stats }

// Reset zeroes the store contents, port bookings and statistics for
// machine reuse. The backing array is kept, and only the written
// prefix [0,dirty) is cleared — pooled machines reset in time
// proportional to the bytes the previous run actually touched.
func (l *LocalStore) Reset() {
	clear(l.data[:l.dirty])
	l.dirty = 0
	l.portFree = [NumPorts]sim.Cycle{}
	l.stats = Stats{}
}

// touch grows the dirty high-water mark to end.
func (l *LocalStore) touch(end int64) {
	if int(end) > l.dirty {
		l.dirty = int(end)
	}
}

// Access books an n-byte access on port starting no earlier than now and
// returns the cycle at which the data is available (for reads) or
// durably written (for writes). Port occupancy is ceil(n/PortWidth)
// cycles; the pipeline latency is added on top.
func (l *LocalStore) Access(port Port, now sim.Cycle, n int) sim.Cycle {
	occ := sim.Cycle((n + l.cfg.PortWidth - 1) / l.cfg.PortWidth)
	if occ < 1 {
		occ = 1
	}
	start := now
	if l.portFree[port] > start {
		l.stats.Contention[port] += int64(l.portFree[port] - start)
		start = l.portFree[port]
	}
	l.portFree[port] = start + occ
	l.stats.Accesses[port]++
	l.stats.Bytes[port] += int64(n)
	return start + occ - 1 + sim.Cycle(l.cfg.Latency)
}

func (l *LocalStore) check(addr int64, n int) error {
	if addr < 0 || addr+int64(n) > int64(len(l.data)) {
		return fmt.Errorf("ls: access [%#x,%#x) outside [0,%#x)", addr, addr+int64(n), len(l.data))
	}
	return nil
}

// ReadBytes fills buf from addr.
func (l *LocalStore) ReadBytes(addr int64, buf []byte) error {
	if err := l.check(addr, len(buf)); err != nil {
		return err
	}
	copy(buf, l.data[addr:])
	return nil
}

// WriteBytes copies data to addr.
func (l *LocalStore) WriteBytes(addr int64, data []byte) error {
	if err := l.check(addr, len(data)); err != nil {
		return err
	}
	copy(l.data[addr:], data)
	l.touch(addr + int64(len(data)))
	return nil
}

// Read32 returns the sign-extended 32-bit word at addr.
func (l *LocalStore) Read32(addr int64) (int64, error) {
	if err := l.check(addr, 4); err != nil {
		return 0, err
	}
	return int64(int32(binary.LittleEndian.Uint32(l.data[addr:]))), nil
}

// Read64 returns the 64-bit word at addr.
func (l *LocalStore) Read64(addr int64) (int64, error) {
	if err := l.check(addr, 8); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(l.data[addr:])), nil
}

// Write32 stores the low 32 bits of v at addr.
func (l *LocalStore) Write32(addr int64, v int64) error {
	if err := l.check(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(l.data[addr:], uint32(v))
	l.touch(addr + 4)
	return nil
}

// Write64 stores v at addr.
func (l *LocalStore) Write64(addr int64, v int64) error {
	if err := l.check(addr, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(l.data[addr:], uint64(v))
	l.touch(addr + 8)
	return nil
}
