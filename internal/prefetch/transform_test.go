package prefetch

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/stats"
)

// buildArraySum builds a program whose root thread sums n int32s located
// at base in main memory with one tagged READ per element, plus one
// untagged READ of a sentinel value that must remain blocking.
func buildArraySum(t *testing.T, base int64, values []int32, sentinel int32) *program.Program {
	t.Helper()
	b := program.NewBuilder("arraysum")
	root := b.Template("root")
	rg := root.Region("array",
		program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeConst(int64(4*len(values))), 4*len(values))

	root.PL().Load(program.R(1), 0) // base

	ex := root.EX()
	ex.Movi(program.R(2), 0) // sum
	ex.Movi(program.R(3), 0) // i
	ex.Movi(program.R(4), int32(len(values)))
	ex.Mov(program.R(5), program.R(1)) // addr
	ex.Label("top")
	ex.ReadRegion(rg, program.R(6), program.R(5), 0)
	ex.Add(program.R(2), program.R(2), program.R(6))
	ex.Addi(program.R(5), program.R(5), 4)
	ex.Addi(program.R(3), program.R(3), 1)
	ex.Blt(program.R(3), program.R(4), "top")
	// Untagged (stays blocking after transformation).
	ex.Read(program.R(7), program.R(1), int32(4*len(values)))
	ex.Add(program.R(2), program.R(2), program.R(7))

	root.PS().
		StoreMailbox(program.R(2), program.R(8), 0).
		Ffree().
		Stop()

	b.Entry(root, base)
	data := make([]byte, 4*len(values)+4)
	for i, v := range values {
		binary.LittleEndian.PutUint32(data[4*i:], uint32(v))
	}
	binary.LittleEndian.PutUint32(data[4*len(values):], uint32(sentinel))
	b.Segment(base, data)

	want := int64(sentinel)
	for _, v := range values {
		want += int64(v)
	}
	b.Check(func(mr program.MemReader, tokens []int64) error {
		if len(tokens) != 1 || tokens[0] != want {
			return fmt.Errorf("tokens = %v, want [%d]", tokens, want)
		}
		return nil
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransformStaticShape(t *testing.T) {
	p := buildArraySum(t, 0x10000, []int32{1, 2, 3, 4}, 9)
	q, err := Transform(p)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	tm := q.Templates[0]
	if !tm.Transformed {
		t.Fatal("template not marked transformed")
	}
	// PF block: base compute (load) + mfcea + addi/mfclsa + movi/mfcsz +
	// mfctag + mfcget = 8 instructions for one slot-based region.
	pf := tm.Blocks[program.PF]
	if len(pf) == 0 {
		t.Fatal("no PF block synthesised")
	}
	wantOps := []isa.Op{isa.LOAD, isa.MFCEA, isa.ADDI, isa.MFCLSA, isa.MOVI, isa.MFCSZ, isa.MFCTAG, isa.MFCGET}
	if len(pf) != len(wantOps) {
		t.Fatalf("PF len = %d, want %d: %v", len(pf), len(wantOps), pf)
	}
	for i, op := range wantOps {
		if pf[i].Op != op {
			t.Fatalf("PF[%d] = %s, want %s", i, pf[i].Op, op)
		}
	}
	// The tagged READ became LSRDX with a delta register; the untagged
	// READ survives.
	reads, lsrdx := 0, 0
	for _, ins := range tm.Blocks[program.EX] {
		switch ins.Op {
		case isa.READ:
			reads++
		case isa.LSRDX:
			lsrdx++
			if ins.Rb < isa.FirstReservedReg {
				t.Fatalf("LSRDX delta register r%d not in reserved range", ins.Rb)
			}
		}
	}
	if reads != 1 || lsrdx != 1 {
		t.Fatalf("reads=%d lsrdx=%d, want 1/1", reads, lsrdx)
	}
	if tm.PrefetchBytes != 16 {
		t.Fatalf("PrefetchBytes = %d, want 16", tm.PrefetchBytes)
	}
	// Original program untouched.
	if p.Templates[0].Transformed || len(p.Templates[0].Blocks[program.PF]) != 0 {
		t.Fatal("Transform mutated its input")
	}
}

func TestTransformedRunsFunctionallyEqual(t *testing.T) {
	values := []int32{5, -3, 100, 42, 7, 7, 7, 1}
	p := buildArraySum(t, 0x40000, values, -11)
	q, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = 1
	cfg.MaxCycles = 2_000_000

	runOne := func(prog *program.Program) *cell.Result {
		m, err := cell.New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.CheckErr != nil {
			t.Fatalf("functional check: %v", res.CheckErr)
		}
		return res
	}
	raw := runOne(p)
	pf := runOne(q)

	if raw.Tokens[0] != pf.Tokens[0] {
		t.Fatalf("results differ: %d vs %d", raw.Tokens[0], pf.Tokens[0])
	}
	// The transformed run keeps exactly the sentinel READ.
	if pf.Agg.Instr.Read != 1 {
		t.Fatalf("transformed Read count = %d, want 1", pf.Agg.Instr.Read)
	}
	if raw.Agg.Instr.Read != int64(len(values))+1 {
		t.Fatalf("raw Read count = %d, want %d", raw.Agg.Instr.Read, len(values)+1)
	}
	// Prefetching must pay overhead but eliminate most memory stalls.
	if pf.Agg.Breakdown[stats.Prefetch] == 0 {
		t.Fatal("no prefetch overhead")
	}
	if pf.Agg.Breakdown[stats.MemStall] >= raw.Agg.Breakdown[stats.MemStall] {
		t.Fatalf("prefetch did not reduce memory stalls: %d vs %d",
			pf.Agg.Breakdown[stats.MemStall], raw.Agg.Breakdown[stats.MemStall])
	}
	// And with 8 x 150-cycle reads removed, it must be faster overall.
	if pf.Cycles >= raw.Cycles {
		t.Fatalf("prefetch run slower: %d vs %d cycles", pf.Cycles, raw.Cycles)
	}
}

func TestAnalyzeStats(t *testing.T) {
	p := buildArraySum(t, 0x10000, []int32{1, 2}, 3)
	q, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(p, q)
	if st.Templates != 1 || st.Regions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ReadsTotal != 2 || st.ReadsRewritten != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.DecoupledFraction(); got != 0.5 {
		t.Fatalf("DecoupledFraction = %v", got)
	}
}

func TestPLBranchFixup(t *testing.T) {
	// A PL block with a loop: after prepending the prologue, the branch
	// target must shift.
	b := program.NewBuilder("plloop")
	root := b.Template("root")
	rg := root.Region("r", program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeConst(16), 16)
	pl := root.PL()
	pl.Load(program.R(1), 0)
	pl.Movi(program.R(2), 0)
	pl.Label("lp")
	pl.Addi(program.R(2), program.R(2), 1)
	pl.Movi(program.R(3), 3)
	pl.Blt(program.R(2), program.R(3), "lp")
	ex := root.EX()
	ex.ReadRegion(rg, program.R(4), program.R(1), 0)
	root.PS().StoreMailbox(program.R(4), program.R(5), 0).Ffree().Stop()
	b.Entry(root, 0x5000)
	b.Segment(0x5000, []byte{77, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	// Prologue for one slot-term region: LOAD, ADDI, SUB = 3 instrs.
	npl := q.Templates[0].Blocks[program.PL]
	var branch *isa.Instruction
	for i := range npl {
		if npl[i].Op == isa.BLT {
			branch = &npl[i]
		}
	}
	if branch == nil {
		t.Fatal("branch lost")
	}
	if branch.Imm != 2+3 {
		t.Fatalf("branch target = %d, want 5 (2 + prologue 3)", branch.Imm)
	}
	// And the transformed program still runs correctly.
	cfg := cell.DefaultConfig()
	cfg.SPEs = 1
	cfg.MaxCycles = 1_000_000
	m, err := cell.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != 1 || res.Tokens[0] != 77 {
		t.Fatalf("tokens = %v, want [77]", res.Tokens)
	}
}

func TestTooManyRegionsRejected(t *testing.T) {
	b := program.NewBuilder("many")
	root := b.Template("root")
	root.PL().Load(program.R(1), 0)
	ex := root.EX()
	for i := 0; i < MaxRegions+1; i++ {
		rg := root.Region(fmt.Sprintf("r%d", i),
			program.AddrExpr{Const: int64(0x1000 * (i + 1))}, program.SizeConst(16), 16)
		ex.ReadRegion(rg, program.R(2), program.R(1), 0)
	}
	root.PS().StoreMailbox(program.R(2), program.R(3), 0).Ffree().Stop()
	b.Entry(root, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(p); err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("Transform err = %v, want region-count error", err)
	}
}

func TestEmitAddrShapes(t *testing.T) {
	// Constant only.
	code, err := emitAddr(program.AddrExpr{Const: 0x1234}, 104, 105)
	if err != nil || len(code) != 1 || code[0].Op != isa.MOVI {
		t.Fatalf("const addr = %v, %v", code, err)
	}
	// Two terms with scales plus offset.
	code, err = emitAddr(program.AddrExpr{
		Const: 8,
		Terms: []program.AddrTerm{{Slot: 0, Scale: 1}, {Slot: 1, Scale: 128}},
	}, 104, 105)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{isa.LOAD, isa.LOAD, isa.MULI, isa.ADD, isa.ADDI}
	if len(code) != len(wantOps) {
		t.Fatalf("code = %v", code)
	}
	for i, op := range wantOps {
		if code[i].Op != op {
			t.Fatalf("code[%d] = %s, want %s", i, code[i].Op, op)
		}
	}
}

func TestDynamicSizeExpr(t *testing.T) {
	code, err := emitSize(program.SizeSlot(2, 4, 0), 110)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 2 || code[0].Op != isa.LOAD || code[1].Op != isa.MULI {
		t.Fatalf("code = %v", code)
	}
	code, err = emitSize(program.SizeConst(64), 110)
	if err != nil || len(code) != 1 || code[0].Imm != 64 {
		t.Fatalf("code = %v, %v", code, err)
	}
}
