// Package prefetch implements the compiler side of the paper's
// mechanism (§3): given a DTA program whose templates declare the global
// data regions they read (and whose READ instructions are tagged with
// the region they fall into), the transformer
//
//  1. synthesises a PreFetch (PF) code block that computes each region's
//     address from the thread's frame inputs and programs the MFC (one
//     DMA GET per region, all in the thread's tag group);
//  2. prepends a PL prologue that computes, per region, the delta
//     between the region's main-memory base and its local prefetch
//     buffer copy; and
//  3. rewrites every tagged READ/READ8 into an indexed local-store
//     access (LSRDX/LSRDX8) that adds the delta — so the original
//     address arithmetic of the EX block keeps working unchanged, but
//     hits the local store instead of blocking on main memory.
//
// Untagged READs are left blocking, mirroring the paper's policy of not
// decoupling accesses where prefetching is not worthwhile (e.g. a single
// data-dependent lookup into a large table).
package prefetch

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/ls"
	"repro/internal/program"
)

// Register plan inside the transformer-reserved range [FirstReservedReg,
// RegTag): deltas for up to MaxRegions regions, then scratch.
const (
	// MaxRegions bounds prefetched regions per template (delta registers
	// are statically assigned).
	MaxRegions = 8

	regDelta0 = isa.FirstReservedReg // 104..111: per-region deltas
	regTmpA   = isa.FirstReservedReg + MaxRegions
	regTmpB   = isa.FirstReservedReg + MaxRegions + 1
	regSize   = isa.FirstReservedReg + MaxRegions + 2
	regChunk  = isa.FirstReservedReg + MaxRegions + 3
	regSz     = isa.FirstReservedReg + MaxRegions + 4
)

// Options selects optional transformations beyond the paper's read
// prefetching.
type Options struct {
	// WriteBack additionally decouples tagged WRITEs: they are
	// redirected into a local staging buffer and flushed to main memory
	// by DMA PUT commands programmed at the start of the PS block (the
	// write-side dual of the paper's mechanism; ablation A7). Write-back
	// regions must be fully written by the thread, or also read-tagged
	// so the PF block populates the staging buffer first.
	WriteBack bool
}

// Transform returns a prefetching clone of p: templates with tagged
// region accesses gain PF blocks and local-store rewrites; everything
// else is untouched. The input program is not modified.
func Transform(p *program.Program) (*program.Program, error) {
	return TransformWithOptions(p, Options{})
}

// TransformWithOptions is Transform with extension knobs.
func TransformWithOptions(p *program.Program, opt Options) (*program.Program, error) {
	q := p.Clone()
	for _, t := range q.Templates {
		if len(t.Accesses) == 0 {
			continue
		}
		if err := transformTemplate(t, opt); err != nil {
			return nil, fmt.Errorf("prefetch: template %q: %w", t.Name, err)
		}
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("prefetch: transformed program invalid: %w", err)
	}
	return q, nil
}

// Stats summarises what the transformation did (the paper reports the
// fraction of READs decoupled — 62% for bitcnt, 100% for mmul/zoom).
type Stats struct {
	Templates      int // templates transformed
	Regions        int // regions prefetched
	ReadsTotal     int // static READ/READ8 instructions before
	ReadsRewritten int
	BufferBytes    int // total prefetch reservation across templates
}

// DecoupledFraction returns rewritten/total (0 when there are no reads).
func (s Stats) DecoupledFraction() float64 {
	if s.ReadsTotal == 0 {
		return 0
	}
	return float64(s.ReadsRewritten) / float64(s.ReadsTotal)
}

// Analyze reports transformation statistics by comparing the original
// program with its transformed counterpart.
func Analyze(before, after *program.Program) Stats {
	var st Stats
	for i, t := range before.Templates {
		for k := program.BlockKind(0); k < program.NumBlocks; k++ {
			for _, ins := range t.Blocks[k] {
				if ins.Op == isa.READ || ins.Op == isa.READ8 {
					st.ReadsTotal++
				}
			}
		}
		at := after.Templates[i]
		if at.Transformed {
			st.Templates++
			st.Regions += len(at.RegionOffsets)
			st.BufferBytes += at.PrefetchBytes
		}
		st.ReadsRewritten += len(t.Accesses)
	}
	return st
}

func transformTemplate(t *program.Template, opt Options) error {
	// Classify accesses: reads are the paper's mechanism; writes are
	// handled only in write-back mode (otherwise their tags are dropped
	// and the WRITEs stay posted, as in the paper).
	isWriteAccess := func(a program.Access) bool {
		op := t.Blocks[a.Block][a.Index].Op
		return op == isa.WRITE || op == isa.WRITE8
	}
	var accesses []program.Access
	usedRead := make([]bool, len(t.Regions))
	usedWrite := make([]bool, len(t.Regions))
	for _, a := range t.Accesses {
		if isWriteAccess(a) {
			if !opt.WriteBack {
				continue
			}
			usedWrite[a.Region] = true
		} else {
			usedRead[a.Region] = true
		}
		accesses = append(accesses, a)
	}
	if len(accesses) == 0 {
		t.Accesses = nil
		return nil
	}
	var regions []int
	for i := range t.Regions {
		if usedRead[i] || usedWrite[i] {
			regions = append(regions, i)
		}
	}
	if len(regions) > MaxRegions {
		return fmt.Errorf("%d regions referenced, max %d", len(regions), MaxRegions)
	}

	// Assign buffer offsets (16-byte aligned, as the MFC requires) and
	// per-region delta registers.
	offsets := make(map[int]int, len(regions))
	deltaFor := make(map[int]uint8, len(regions))
	total := 0
	for n, ri := range regions {
		offsets[ri] = total
		deltaFor[ri] = uint8(regDelta0 + n)
		total += (t.Regions[ri].MaxBytes + ls.Align - 1) &^ (ls.Align - 1)
	}

	// 1. Synthesise the PF block (GETs for read-referenced regions) and,
	// in write-back mode, the PS prologue (PUTs for written regions).
	var pf []isa.Instruction
	for _, ri := range regions {
		if !usedRead[ri] {
			continue
		}
		var err error
		pf, err = emitRegionXfer(pf, t.Regions[ri], offsets[ri], isa.MFCGET)
		if err != nil {
			return fmt.Errorf("region %q: %w", t.Regions[ri].Name, err)
		}
	}
	if len(t.Blocks[program.PF]) > 0 && len(pf) > 0 {
		return fmt.Errorf("template already has a PF block")
	}
	if len(pf) > 0 {
		t.Blocks[program.PF] = pf
	}
	if opt.WriteBack {
		var puts []isa.Instruction
		for _, ri := range regions {
			if !usedWrite[ri] {
				continue
			}
			var err error
			puts, err = emitRegionPut(puts, t.Regions[ri], offsets[ri], deltaFor[ri])
			if err != nil {
				return fmt.Errorf("region %q put: %w", t.Regions[ri].Name, err)
			}
		}
		if len(puts) > 0 {
			t.Blocks[program.PS] = prependWithFixups(puts, t.Blocks[program.PS])
		}
	}

	// 2. PL prologue: delta_i = (RegPFB + offset_i) - base_i.
	var prologue []isa.Instruction
	for n, ri := range regions {
		r := t.Regions[ri]
		code, err := emitAddr(r.Base, regTmpA, regTmpB)
		if err != nil {
			return err
		}
		prologue = append(prologue, code...)
		delta := uint8(regDelta0 + n)
		prologue = append(prologue,
			isa.Instruction{Op: isa.ADDI, Rd: delta, Ra: isa.RegPFB, Imm: int32(offsets[ri])},
			isa.Instruction{Op: isa.SUB, Rd: delta, Ra: delta, Rb: regTmpA})
	}
	t.Blocks[program.PL] = prependWithFixups(prologue, t.Blocks[program.PL])

	// 3. Rewrite tagged accesses in place.
	for _, a := range accesses {
		block := t.Blocks[a.Block]
		ins := &block[a.Index]
		switch ins.Op {
		case isa.READ:
			ins.Op = isa.LSRDX
		case isa.READ8:
			ins.Op = isa.LSRDX8
		case isa.WRITE:
			ins.Op = isa.LSWRX
		case isa.WRITE8:
			ins.Op = isa.LSWRX8
		default:
			return fmt.Errorf("access tags non-memory op %s", ins.Op)
		}
		if ins.Rb != 0 {
			return fmt.Errorf("tagged access uses rb: %s", ins)
		}
		ins.Rb = deltaFor[a.Region]
	}

	t.Accesses = nil
	t.PrefetchBytes = total
	t.RegionOffsets = make([]int, 0, len(regions))
	for _, ri := range regions {
		t.RegionOffsets = append(t.RegionOffsets, offsets[ri])
	}
	t.Transformed = true
	return nil
}

// prependWithFixups inserts a prologue before a block, shifting the
// block's branch targets.
func prependWithFixups(prologue, block []isa.Instruction) []isa.Instruction {
	shift := int32(len(prologue))
	out := make([]isa.Instruction, 0, len(prologue)+len(block))
	out = append(out, prologue...)
	for _, ins := range block {
		if isa.MustInfo(ins.Op).Branch {
			ins.Imm += shift
		}
		out = append(out, ins)
	}
	return out
}

// emitRegionXfer appends the DMA-programming code for one region (cmd is
// MFCGET for prefetch, MFCPUT for write-back). Unchunked regions issue a
// single command; chunked regions run a command loop (one command per
// ChunkBytes), which is where fetching 2D objects like matrices pays a
// per-row programming cost.
func emitRegionXfer(pf []isa.Instruction, r program.Region, bufOff int, cmd isa.Op) ([]isa.Instruction, error) {
	code, err := emitAddr(r.Base, regTmpA, regTmpB)
	if err != nil {
		return nil, fmt.Errorf("base: %w", err)
	}
	pf = append(pf, code...)

	single := r.ChunkBytes <= 0 ||
		(r.Size.Slot < 0 && r.Size.Const <= int64(r.ChunkBytes))
	if single {
		pf = append(pf, isa.Instruction{Op: isa.MFCEA, Ra: regTmpA})
		pf = append(pf,
			isa.Instruction{Op: isa.ADDI, Rd: regTmpB, Ra: isa.RegPFB, Imm: int32(bufOff)},
			isa.Instruction{Op: isa.MFCLSA, Ra: regTmpB})
		szCode, err := emitSize(r.Size, regSize)
		if err != nil {
			return nil, fmt.Errorf("size: %w", err)
		}
		pf = append(pf, szCode...)
		pf = append(pf, isa.Instruction{Op: isa.MFCSZ, Ra: regSize})
		pf = append(pf, isa.Instruction{Op: isa.MFCTAG, Ra: isa.RegTag})
		pf = append(pf, isa.Instruction{Op: cmd})
		return pf, nil
	}

	// Chunked loop. regTmpA walks the main-memory address, regTmpB the
	// LS address, regSize the remaining bytes, regSz this command's size.
	pf = append(pf, isa.Instruction{Op: isa.ADDI, Rd: regTmpB, Ra: isa.RegPFB, Imm: int32(bufOff)})
	szCode, err := emitSize(r.Size, regSize)
	if err != nil {
		return nil, fmt.Errorf("size: %w", err)
	}
	pf = append(pf, szCode...)
	pf = append(pf, isa.Instruction{Op: isa.MOVI, Rd: regChunk, Imm: int32(r.ChunkBytes)})
	top := int32(len(pf))
	pf = append(pf,
		isa.Instruction{Op: isa.MFCEA, Ra: regTmpA},           // top+0
		isa.Instruction{Op: isa.MFCLSA, Ra: regTmpB},          // top+1
		isa.Instruction{Op: isa.MOV, Rd: regSz, Ra: regChunk}, // top+2: sz = chunk
		isa.Instruction{Op: isa.BGE, Ra: regSize, Rb: regChunk, // top+3: rem >= chunk?
			Imm: top + 5},
		isa.Instruction{Op: isa.MOV, Rd: regSz, Ra: regSize}, // top+4: sz = rem
		isa.Instruction{Op: isa.MFCSZ, Ra: regSz},            // top+5
		isa.Instruction{Op: isa.MFCTAG, Ra: isa.RegTag},      // top+6
		isa.Instruction{Op: cmd},                             // top+7
		isa.Instruction{Op: isa.ADD, Rd: regTmpA, Ra: regTmpA, Rb: regSz},
		isa.Instruction{Op: isa.ADD, Rd: regTmpB, Ra: regTmpB, Rb: regSz},
		isa.Instruction{Op: isa.SUB, Rd: regSize, Ra: regSize, Rb: regSz},
		isa.Instruction{Op: isa.BLT, Ra: isa.RegZero, Rb: regSize, Imm: top},
	)
	return pf, nil
}

// emitRegionPut appends the PS-block DMA PUT programming for a
// write-back region. The main-memory base is recovered from the delta
// register computed by the PL prologue (base = PFB+offset-delta), so no
// frame reads are needed in PS. Write-back regions require constant
// sizes.
func emitRegionPut(ps []isa.Instruction, r program.Region, bufOff int, delta uint8) ([]isa.Instruction, error) {
	if r.Size.Slot >= 0 {
		return nil, fmt.Errorf("write-back region %q needs a constant size", r.Name)
	}
	size := r.Size.Const
	// regTmpA = main-memory base; regTmpB = LS staging base.
	ps = append(ps,
		isa.Instruction{Op: isa.ADDI, Rd: regTmpA, Ra: isa.RegPFB, Imm: int32(bufOff)},
		isa.Instruction{Op: isa.SUB, Rd: regTmpA, Ra: regTmpA, Rb: delta},
		isa.Instruction{Op: isa.ADDI, Rd: regTmpB, Ra: isa.RegPFB, Imm: int32(bufOff)},
	)
	if r.ChunkBytes <= 0 || size <= int64(r.ChunkBytes) {
		ps = append(ps,
			isa.Instruction{Op: isa.MFCEA, Ra: regTmpA},
			isa.Instruction{Op: isa.MFCLSA, Ra: regTmpB},
			isa.Instruction{Op: isa.MOVI, Rd: regSize, Imm: int32(size)},
			isa.Instruction{Op: isa.MFCSZ, Ra: regSize},
			isa.Instruction{Op: isa.MFCTAG, Ra: isa.RegTag},
			isa.Instruction{Op: isa.MFCPUT},
		)
		return ps, nil
	}
	ps = append(ps,
		isa.Instruction{Op: isa.MOVI, Rd: regSize, Imm: int32(size)},
		isa.Instruction{Op: isa.MOVI, Rd: regChunk, Imm: int32(r.ChunkBytes)},
	)
	top := int32(len(ps))
	ps = append(ps,
		isa.Instruction{Op: isa.MFCEA, Ra: regTmpA},
		isa.Instruction{Op: isa.MFCLSA, Ra: regTmpB},
		isa.Instruction{Op: isa.MOV, Rd: regSz, Ra: regChunk},
		isa.Instruction{Op: isa.BGE, Ra: regSize, Rb: regChunk, Imm: top + 5},
		isa.Instruction{Op: isa.MOV, Rd: regSz, Ra: regSize},
		isa.Instruction{Op: isa.MFCSZ, Ra: regSz},
		isa.Instruction{Op: isa.MFCTAG, Ra: isa.RegTag},
		isa.Instruction{Op: isa.MFCPUT},
		isa.Instruction{Op: isa.ADD, Rd: regTmpA, Ra: regTmpA, Rb: regSz},
		isa.Instruction{Op: isa.ADD, Rd: regTmpB, Ra: regTmpB, Rb: regSz},
		isa.Instruction{Op: isa.SUB, Rd: regSize, Ra: regSize, Rb: regSz},
		isa.Instruction{Op: isa.BLT, Ra: isa.RegZero, Rb: regSize, Imm: top},
	)
	return ps, nil
}

// emitAddr generates code leaving the address of expr in dst, using tmp
// as scratch.
func emitAddr(expr program.AddrExpr, dst, tmp uint8) ([]isa.Instruction, error) {
	var out []isa.Instruction
	if len(expr.Terms) == 0 {
		if !fitsInt32(expr.Const) {
			return nil, fmt.Errorf("constant base %#x exceeds 32 bits", expr.Const)
		}
		return []isa.Instruction{{Op: isa.MOVI, Rd: dst, Imm: int32(expr.Const)}}, nil
	}
	for i, term := range expr.Terms {
		target := dst
		if i > 0 {
			target = tmp
		}
		out = append(out, isa.Instruction{Op: isa.LOAD, Rd: target, Imm: int32(term.Slot)})
		if term.Scale != 1 {
			if !fitsInt32(term.Scale) {
				return nil, fmt.Errorf("scale %d exceeds 32 bits", term.Scale)
			}
			out = append(out, isa.Instruction{Op: isa.MULI, Rd: target, Ra: target, Imm: int32(term.Scale)})
		}
		if i > 0 {
			out = append(out, isa.Instruction{Op: isa.ADD, Rd: dst, Ra: dst, Rb: tmp})
		}
	}
	if expr.Const != 0 {
		if !fitsInt32(expr.Const) {
			return nil, fmt.Errorf("base offset %d exceeds 32 bits", expr.Const)
		}
		out = append(out, isa.Instruction{Op: isa.ADDI, Rd: dst, Ra: dst, Imm: int32(expr.Const)})
	}
	return out, nil
}

// emitSize generates code leaving the byte count of expr in dst.
func emitSize(expr program.SizeExpr, dst uint8) ([]isa.Instruction, error) {
	if expr.Slot < 0 {
		if !fitsInt32(expr.Const) {
			return nil, fmt.Errorf("constant size %d exceeds 32 bits", expr.Const)
		}
		return []isa.Instruction{{Op: isa.MOVI, Rd: dst, Imm: int32(expr.Const)}}, nil
	}
	out := []isa.Instruction{{Op: isa.LOAD, Rd: dst, Imm: int32(expr.Slot)}}
	if expr.Scale != 1 {
		if !fitsInt32(expr.Scale) {
			return nil, fmt.Errorf("size scale %d exceeds 32 bits", expr.Scale)
		}
		out = append(out, isa.Instruction{Op: isa.MULI, Rd: dst, Ra: dst, Imm: int32(expr.Scale)})
	}
	if expr.Const != 0 {
		if !fitsInt32(expr.Const) {
			return nil, fmt.Errorf("size offset %d exceeds 32 bits", expr.Const)
		}
		out = append(out, isa.Instruction{Op: isa.ADDI, Rd: dst, Ra: dst, Imm: int32(expr.Const)})
	}
	return out, nil
}

func fitsInt32(v int64) bool { return v == int64(int32(v)) }
