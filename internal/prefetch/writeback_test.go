package prefetch_test

// External test package: these tests build workload programs, and the
// workloads registry now includes synth corpus entries that import
// prefetch — an import cycle unless the tests sit outside the package.

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/program"
	"repro/internal/workloads"
)

// runWB builds a workload, applies the given transform options, runs it
// on 4 SPEs and verifies the functional check.
func runWB(t *testing.T, name string, p workloads.Params, opt prefetch.Options) *cell.Result {
	t.Helper()
	w, ok := workloads.Get(name)
	if !ok {
		t.Fatalf("workload %s", name)
	}
	prog, err := w.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err = prefetch.TransformWithOptions(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cell.DefaultConfig()
	cfg.SPEs = 4
	cfg.MaxCycles = 50_000_000
	m, err := cell.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckErr != nil {
		t.Fatalf("functional check: %v", res.CheckErr)
	}
	return res
}

func TestWriteBackMmulCorrectAndWriteFree(t *testing.T) {
	p := workloads.Params{N: 16, Workers: 8, Seed: 21}
	plain := runWB(t, "mmul", p, prefetch.Options{})
	wb := runWB(t, "mmul", p, prefetch.Options{WriteBack: true})

	// Plain prefetching leaves the WRITEs posted.
	if plain.Agg.Instr.Write != 16*16 {
		t.Fatalf("plain writes = %d, want 256", plain.Agg.Instr.Write)
	}
	var plainPuts int64
	for _, m := range plain.MFCs {
		plainPuts += m.Puts
	}
	if plainPuts != 0 {
		t.Fatalf("plain mode issued %d PUTs", plainPuts)
	}

	// Write-back removes every WRITE and issues DMA PUTs instead. The
	// functional check (exact C content) ran inside runWB, proving the
	// staged data drained to memory.
	if wb.Agg.Instr.Write != 0 {
		t.Fatalf("write-back left %d WRITEs", wb.Agg.Instr.Write)
	}
	var puts, bytesOut int64
	for _, m := range wb.MFCs {
		puts += m.Puts
		bytesOut += m.BytesOut
	}
	if puts == 0 {
		t.Fatal("no DMA PUTs issued")
	}
	if bytesOut < 16*16*4 {
		t.Fatalf("BytesOut = %d, want >= %d (whole C)", bytesOut, 16*16*4)
	}
}

func TestWriteBackZoomCorrect(t *testing.T) {
	p := workloads.Params{N: 8, Workers: 4, Seed: 22}
	wb := runWB(t, "zoom", p, prefetch.Options{WriteBack: true})
	if wb.Agg.Instr.Write != 0 {
		t.Fatalf("write-back left %d WRITEs", wb.Agg.Instr.Write)
	}
	// Checksum + full output comparison already ran in runWB.
	out := 8 * workloads.ZoomFactor * 8 * workloads.ZoomFactor
	var bytesOut int64
	for _, m := range wb.MFCs {
		bytesOut += m.BytesOut
	}
	if bytesOut < int64(4*out) {
		t.Fatalf("BytesOut = %d, want >= %d", bytesOut, 4*out)
	}
}

func TestWriteBackReducesBusMessages(t *testing.T) {
	// Batching writes into PUT packets must reduce message count vs
	// per-element posted writes.
	p := workloads.Params{N: 16, Workers: 8, Seed: 23}
	plain := runWB(t, "mmul", p, prefetch.Options{})
	wb := runWB(t, "mmul", p, prefetch.Options{WriteBack: true})
	if wb.Net.Messages >= plain.Net.Messages {
		t.Fatalf("write-back did not reduce messages: %d vs %d",
			wb.Net.Messages, plain.Net.Messages)
	}
}

func TestWriteBackSynthesisShape(t *testing.T) {
	w, _ := workloads.Get("mmul")
	prog, err := w.Build(workloads.Params{N: 8, Workers: 4, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := prefetch.TransformWithOptions(prog, prefetch.Options{WriteBack: true})
	if err != nil {
		t.Fatal(err)
	}
	// Worker template: PS begins with PUT programming; EX has LSWRX
	// instead of WRITE.
	var worker *program.Template
	for _, tm := range wb.Templates {
		if tm.Name == "worker" {
			worker = tm
		}
	}
	if worker == nil {
		t.Fatal("no worker template")
	}
	puts := 0
	for _, ins := range worker.Blocks[program.PS] {
		if ins.Op == isa.MFCPUT {
			puts++
		}
	}
	if puts == 0 {
		t.Fatal("PS block has no MFCPUT")
	}
	for _, ins := range worker.Blocks[program.EX] {
		if ins.Op == isa.WRITE || ins.Op == isa.WRITE8 {
			t.Fatalf("EX still contains %s", ins)
		}
	}
	lswrx := 0
	for _, ins := range worker.Blocks[program.EX] {
		if ins.Op == isa.LSWRX {
			lswrx++
		}
	}
	if lswrx != 1 {
		t.Fatalf("LSWRX count = %d, want 1", lswrx)
	}
}

func TestPlainTransformIgnoresWriteTags(t *testing.T) {
	w, _ := workloads.Get("mmul")
	prog, err := w.Build(workloads.Params{N: 8, Workers: 4, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := prefetch.Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	var worker *program.Template
	for _, tm := range plain.Templates {
		if tm.Name == "worker" {
			worker = tm
		}
	}
	writes := 0
	for _, ins := range worker.Blocks[program.EX] {
		if ins.Op == isa.WRITE {
			writes++
		}
	}
	if writes != 1 {
		t.Fatalf("plain transform should keep the WRITE, got %d", writes)
	}
	for _, ins := range worker.Blocks[program.PS] {
		if ins.Op == isa.MFCPUT {
			t.Fatal("plain transform synthesised a PUT")
		}
	}
}

func TestWriteBackDynamicSizeRejected(t *testing.T) {
	b := program.NewBuilder("dynout")
	root := b.Template("root")
	rg := root.Region("out",
		program.AddrExpr{Terms: []program.AddrTerm{{Slot: 0, Scale: 1}}},
		program.SizeSlot(1, 4, 0), 64)
	root.PL().Load(program.R(1), 0)
	ex := root.EX()
	ex.Movi(program.R(2), 0x1000)
	ex.WriteRegion(rg, program.R(1), program.R(2), 0)
	root.PS().StoreMailbox(program.R(1), program.R(3), 0).Ffree().Stop()
	b.Entry(root, 0x1000, 4)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prefetch.TransformWithOptions(p, prefetch.Options{WriteBack: true}); err == nil ||
		!strings.Contains(err.Error(), "constant size") {
		t.Fatalf("err = %v, want constant-size rejection", err)
	}
}
