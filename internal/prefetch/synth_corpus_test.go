package prefetch_test

// External test package: synth imports prefetch, so this corpus-level
// regression test for Transform lives on the _test side of the package
// boundary.

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/prefetch"
	"repro/internal/synth"
)

// TestTransformOverSynthCorpus pins Transform's behaviour over the
// 32-seed synth corpus: every transformed program must be functionally
// identical to its original (tokens and written memory, via the full
// differential check) and must never exceed the documented cycle guard
// band (synth.DefaultGuardRatio x original + synth.DefaultGuardSlack).
// A transformer change that alters results or wrecks performance on any
// corpus shape fails here before it reaches the paper experiments.
func TestTransformOverSynthCorpus(t *testing.T) {
	for _, seed := range synth.CorpusSeeds() {
		sc := synth.FromSeed(seed)
		// CheckScenario enforces the functional identity and both guard
		// bands internally; any violation surfaces as a DivergenceError.
		if _, err := synth.CheckScenario(sc, synth.CheckOptions{}); err != nil {
			t.Errorf("corpus seed %d: %v", seed, err)
		}
	}
}

// TestTransformDeterministicOverCorpus: Transform is a pure function of
// its input — identical assembly out for identical programs in, across
// every corpus shape (chunked regions, multi-region templates,
// write-path-free templates).
func TestTransformDeterministicOverCorpus(t *testing.T) {
	for _, seed := range synth.CorpusSeeds() {
		prog, err := synth.Generate(synth.FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := prefetch.Transform(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := prefetch.Transform(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if asm.Format(a) != asm.Format(b) {
			t.Fatalf("seed %d: Transform not deterministic", seed)
		}
	}
}
