// Package core anchors the paper's primary contribution inside the
// repository layout. The DMA-prefetching mechanism itself is implemented
// across two packages:
//
//   - repro/internal/prefetch — the compiler side (§3): PF-block
//     synthesis from region annotations, READ→local-store rewriting,
//     and the write-back extension;
//   - repro/internal/dta — the architecture side (§2–§3): frames and
//     synchronisation counters, the LSE/DSE distributed scheduler, and
//     the two thread states added for prefetching ("Program DMA",
//     "Wait for DMA").
//
// This package re-exports the central types so that the conceptual core
// is importable from one place; the substrates (sim, isa, noc, mem, ls,
// mfc, spu, cell) live alongside it.
package core

import (
	"repro/internal/dta"
	"repro/internal/prefetch"
	"repro/internal/program"
)

// Transform is the paper's compiler pass (see prefetch.Transform).
var Transform = prefetch.Transform

// TransformWithOptions adds the write-back extension (ablation A7).
var TransformWithOptions = prefetch.TransformWithOptions

// Re-exported core types.
type (
	// Program is a DTA program: templates, regions, memory image.
	Program = program.Program
	// Template is one thread type with PF/PL/EX/PS code blocks.
	Template = program.Template
	// Region is a declared global-data block for the prefetcher.
	Region = program.Region
	// Thread is a live DTA thread (frame + synchronisation counter).
	Thread = dta.Thread
	// ThreadState is the lifetime state of paper Figure 4.
	ThreadState = dta.ThreadState
	// LSE is the per-PE Local Scheduler Element.
	LSE = dta.LSE
	// DSE is the per-node Distributed Scheduler Element.
	DSE = dta.DSE
)

// Thread lifetime states (paper Figure 4), including the two states the
// prefetching mechanism adds.
const (
	StateWaitStores = dta.StateWaitStores
	StateProgramDMA = dta.StateProgramDMA // added by the paper
	StateWaitDMA    = dta.StateWaitDMA    // added by the paper
	StateReady      = dta.StateReady
	StateRunning    = dta.StateRunning
	StateDone       = dta.StateDone
)
